//! Pluggable batch execution: fan per-sample work across worker threads.
//!
//! The training loop, evaluation, and ACFG extraction all share the same
//! shape — run one job per sample, collect results by sample index. The
//! [`BatchExecutor`] trait abstracts *where* those jobs run (the calling
//! thread, or a pool of scoped worker threads) so the numeric code is
//! written once and the thread count becomes a runtime knob.
//!
//! # Determinism contract
//!
//! An executor guarantees every job for `0..n` runs exactly once, but
//! makes **no** promise about which worker lane runs which index or in
//! what order. Callers that need reproducible floating-point results
//! must therefore keep per-index state and combine it in index order
//! afterwards — see [`run_indexed`] and the gradient reduction in
//! `trainer.rs`, which is bitwise-identical for any worker count because
//! float additions happen in sample order regardless of scheduling.
//!
//! # Example
//!
//! ```
//! use magic::executor::{executor_for, run_indexed};
//!
//! // `0` = auto-detect, `1` = serial, `n` = that many threads.
//! let executor = executor_for(2);
//! // Results come back in index order regardless of which lane ran
//! // which job, so reductions over them are deterministic.
//! let squares = run_indexed(executor.as_ref(), 5, |_worker, i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A strategy for running `n` independent jobs across worker lanes.
///
/// Object-safe so callers can hold a `Box<dyn BatchExecutor>` chosen at
/// runtime from a `--train-workers` style knob.
pub trait BatchExecutor: Send + Sync {
    /// Number of worker lanes (`>= 1`). Jobs receive a lane id below
    /// this bound, so callers can size per-worker scratch state.
    fn workers(&self) -> usize;

    /// Runs `job(worker_id, index)` for every `index` in `0..n`.
    ///
    /// Each worker lane runs its jobs sequentially, so per-lane scratch
    /// (tapes, gradient buffers) needs no locking beyond lane ownership.
    /// Returns only after all jobs complete; a panicking job propagates.
    fn execute(&self, n: usize, job: &(dyn Fn(usize, usize) + Sync));
}

/// Runs every job inline on the calling thread, in index order.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialExecutor;

impl BatchExecutor for SerialExecutor {
    fn workers(&self) -> usize {
        1
    }

    fn execute(&self, n: usize, job: &(dyn Fn(usize, usize) + Sync)) {
        for i in 0..n {
            job(0, i);
        }
    }
}

/// Fans jobs across scoped threads with an atomic work-stealing cursor.
///
/// Threads are spawned per `execute` call (`std::thread::scope`), which
/// keeps the type free of lifetime plumbing; for mini-batch training the
/// spawn cost is dwarfed by a single forward/backward pass.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedExecutor {
    workers: usize,
}

impl ThreadedExecutor {
    /// Creates an executor with `workers` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero — resolve "auto" with
    /// [`resolve_workers`] first.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "ThreadedExecutor needs at least one worker");
        ThreadedExecutor { workers }
    }
}

impl BatchExecutor for ThreadedExecutor {
    fn workers(&self) -> usize {
        self.workers
    }

    fn execute(&self, n: usize, job: &(dyn Fn(usize, usize) + Sync)) {
        let threads = self.workers.min(n);
        if threads <= 1 {
            SerialExecutor.execute(n, job);
            return;
        }
        let next = AtomicUsize::new(0);
        let next = &next;
        std::thread::scope(|scope| {
            for worker in 0..threads {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    job(worker, i);
                });
            }
        });
    }
}

/// Resolves a worker-count knob: `0` means "auto" (the machine's
/// available parallelism), anything else is taken literally.
pub fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        workers
    }
}

/// Builds the executor for a worker-count knob (`0` = auto, `1` =
/// serial, `n` = that many threads).
pub fn executor_for(workers: usize) -> Box<dyn BatchExecutor> {
    match resolve_workers(workers) {
        1 => Box::new(SerialExecutor),
        n => Box::new(ThreadedExecutor::new(n)),
    }
}

/// Resolves a worker-count knob for one of `concurrent` simultaneous
/// training runs (e.g. cross-validation folds): `0` ("auto") divides the
/// machine's parallelism across the runs so two layers of fan-out do not
/// oversubscribe the cores; an explicit count is honored verbatim per
/// run. Every call site that splits auto-parallelism must route through
/// this helper so the division rule stays consistent.
pub fn workers_per_concurrent_run(workers: usize, concurrent: usize) -> usize {
    if workers == 0 {
        (resolve_workers(0) / concurrent.max(1)).max(1)
    } else {
        workers
    }
}

/// Runs `f(worker_id, index)` for `0..n` on `executor` and returns the
/// results in index order — the deterministic-collection companion to
/// [`BatchExecutor::execute`].
pub fn run_indexed<T, F>(executor: &dyn BatchExecutor, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    executor.execute(n, &|worker, i| {
        let result = f(worker, i);
        *slots[i].lock().expect("unpoisoned result slot") = Some(result);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("unpoisoned result slot")
                .expect("executor ran every index")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    fn covers_all_indices(executor: &dyn BatchExecutor) {
        let n = 97;
        let seen = run_indexed(executor, n, |_, i| i);
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn serial_executor_runs_in_order() {
        let order = Mutex::new(Vec::new());
        SerialExecutor.execute(5, &|worker, i| {
            assert_eq!(worker, 0);
            order.lock().unwrap().push(i);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn executors_cover_every_index_exactly_once() {
        covers_all_indices(&SerialExecutor);
        covers_all_indices(&ThreadedExecutor::new(2));
        covers_all_indices(&ThreadedExecutor::new(4));
        covers_all_indices(&ThreadedExecutor::new(16));
    }

    #[test]
    fn threaded_executor_reports_valid_worker_ids() {
        let executor = ThreadedExecutor::new(3);
        let ids = run_indexed(&executor, 50, |worker, _| worker);
        let distinct: HashSet<usize> = ids.iter().copied().collect();
        assert!(distinct.iter().all(|&w| w < 3));
        assert!(!distinct.is_empty());
    }

    #[test]
    fn threaded_executor_handles_fewer_jobs_than_workers() {
        let executor = ThreadedExecutor::new(8);
        assert_eq!(run_indexed(&executor, 2, |_, i| i * 10), vec![0, 10]);
        assert_eq!(run_indexed(&executor, 0, |_, i| i), Vec::<usize>::new());
    }

    #[test]
    fn executor_for_resolves_the_knob() {
        assert_eq!(executor_for(1).workers(), 1);
        assert_eq!(executor_for(4).workers(), 4);
        assert!(executor_for(0).workers() >= 1);
        assert_eq!(resolve_workers(3), 3);
        assert!(resolve_workers(0) >= 1);
    }

    #[test]
    fn workers_per_concurrent_run_divides_only_auto() {
        // Explicit counts pass through untouched, per run.
        assert_eq!(workers_per_concurrent_run(3, 5), 3);
        assert_eq!(workers_per_concurrent_run(1, 8), 1);
        // Auto divides the detected parallelism but never hits zero.
        let auto = workers_per_concurrent_run(0, 4);
        assert_eq!(auto, (resolve_workers(0) / 4).max(1));
        assert!(workers_per_concurrent_run(0, usize::MAX) >= 1);
        assert_eq!(workers_per_concurrent_run(0, 0), resolve_workers(0));
    }

    #[test]
    fn run_indexed_sums_match_serial_regardless_of_scheduling() {
        let counter = AtomicU64::new(0);
        let values = run_indexed(&ThreadedExecutor::new(4), 200, |_, i| {
            counter.fetch_add(1, Ordering::Relaxed);
            (i as u64) * 3 + 1
        });
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        let expected: Vec<u64> = (0..200u64).map(|i| i * 3 + 1).collect();
        assert_eq!(values, expected);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        ThreadedExecutor::new(0);
    }
}
