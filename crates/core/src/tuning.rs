//! Hyperparameter tuning: the exhaustive grid of Table II.
//!
//! The paper searches 208 settings — 64 with adaptive pooling, 96 with
//! SortPooling + Conv1D and 48 with SortPooling + WeightedVertices —
//! scoring each by five-fold cross-validated mean validation loss.
//! [`HyperParams::full_grid`] reproduces that grid exactly;
//! [`HyperParams::reduced_grid`] is a CPU-sized subset for the shipped
//! benches.

use crate::cv::{cross_validate, CvOutcome};
use crate::trainer::TrainConfig;
use magic_model::{DgcnnConfig, GraphInput, PoolingHead};
use std::fmt;

/// The three head families of Table II's "Pooling Type" and "Remaining
/// Layer" rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeadKind {
    /// Adaptive max pooling + Conv2D (Section III-C).
    Adaptive,
    /// SortPooling + the original Conv1D column.
    SortConv1d,
    /// SortPooling + WeightedVertices (Section III-B).
    SortWeighted,
}

impl fmt::Display for HeadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HeadKind::Adaptive => "Adaptive Pooling",
            HeadKind::SortConv1d => "Sort Pooling + Conv1D",
            HeadKind::SortWeighted => "Sort Pooling + WeightedVertices",
        };
        f.write_str(s)
    }
}

/// One hyperparameter setting of the Table II grid.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperParams {
    /// Head family.
    pub head: HeadKind,
    /// Pooling ratio (0.2 or 0.64).
    pub pooling_ratio: f64,
    /// Graph convolution widths.
    pub conv_sizes: Vec<usize>,
    /// Conv2D channels (adaptive head only).
    pub conv2d_channels: usize,
    /// Conv1D channel pair (Conv1D head only).
    pub conv1d_channels: (usize, usize),
    /// Conv1D kernel size (Conv1D head only; 5 or 7).
    pub conv1d_kernel: usize,
    /// Dropout rate (0.1 or 0.5).
    pub dropout: f32,
    /// Batch size (10 or 40).
    pub batch_size: usize,
    /// L2 weight regularization factor (1e-4 or 5e-4).
    pub weight_decay: f32,
}

impl fmt::Display for HyperParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ratio={} conv={:?} drop={} batch={} l2={}",
            self.head, self.pooling_ratio, self.conv_sizes, self.dropout, self.batch_size,
            self.weight_decay
        )
    }
}

const RATIOS: [f64; 2] = [0.2, 0.64];
const DROPOUTS: [f32; 2] = [0.1, 0.5];
const BATCHES: [usize; 2] = [10, 40];
const DECAYS: [f32; 2] = [1e-4, 5e-4];
/// Conv stacks; `(32,32,32,1)` is only valid for sort pooling (its final
/// single channel is the sort key — Table II footnote 1).
const SORT_CONVS: [&[usize]; 3] = [&[32, 32, 32, 1], &[32, 32, 32, 32], &[128, 64, 32, 32]];
const ADAPTIVE_CONVS: [&[usize]; 2] = [&[32, 32, 32, 32], &[128, 64, 32, 32]];

impl HyperParams {
    /// A single sensible default (the YANCFG best model of Table II:
    /// adaptive pooling, ratio 0.2, `(32,32,32,32)`, 16 channels).
    pub fn paper_default() -> Self {
        HyperParams {
            head: HeadKind::Adaptive,
            pooling_ratio: 0.2,
            conv_sizes: vec![32, 32, 32, 32],
            conv2d_channels: 16,
            conv1d_channels: (16, 32),
            conv1d_kernel: 5,
            dropout: 0.1,
            batch_size: 10,
            weight_decay: 1e-4,
        }
    }

    /// The full 208-setting grid of Table II: 64 adaptive + 96 Conv1D +
    /// 48 WeightedVertices.
    pub fn full_grid() -> Vec<HyperParams> {
        let mut grid = Vec::with_capacity(208);
        let base = HyperParams::paper_default();
        for &ratio in &RATIOS {
            for &dropout in &DROPOUTS {
                for &batch_size in &BATCHES {
                    for &weight_decay in &DECAYS {
                        // Adaptive: 2 conv stacks x 2 channel choices.
                        for conv in ADAPTIVE_CONVS {
                            for &channels in &[16usize, 32] {
                                grid.push(HyperParams {
                                    head: HeadKind::Adaptive,
                                    pooling_ratio: ratio,
                                    conv_sizes: conv.to_vec(),
                                    conv2d_channels: channels,
                                    dropout,
                                    batch_size,
                                    weight_decay,
                                    ..base.clone()
                                });
                            }
                        }
                        // Sort + Conv1D: 3 conv stacks x 2 kernels x 1
                        // channel pair.
                        for conv in SORT_CONVS {
                            for &kernel in &[5usize, 7] {
                                grid.push(HyperParams {
                                    head: HeadKind::SortConv1d,
                                    pooling_ratio: ratio,
                                    conv_sizes: conv.to_vec(),
                                    conv1d_kernel: kernel,
                                    dropout,
                                    batch_size,
                                    weight_decay,
                                    ..base.clone()
                                });
                            }
                        }
                        // Sort + WeightedVertices: 3 conv stacks.
                        for conv in SORT_CONVS {
                            grid.push(HyperParams {
                                head: HeadKind::SortWeighted,
                                pooling_ratio: ratio,
                                conv_sizes: conv.to_vec(),
                                dropout,
                                batch_size,
                                weight_decay,
                                ..base.clone()
                            });
                        }
                    }
                }
            }
        }
        grid
    }

    /// A six-setting subset covering all three heads and both pooling
    /// ratios — what the shipped bench binaries sweep by default.
    pub fn reduced_grid() -> Vec<HyperParams> {
        let base = HyperParams::paper_default();
        let mut grid = Vec::new();
        for head in [HeadKind::Adaptive, HeadKind::SortConv1d, HeadKind::SortWeighted] {
            for &ratio in &RATIOS {
                grid.push(HyperParams { head, pooling_ratio: ratio, ..base.clone() });
            }
        }
        grid
    }

    /// Resolves the pooling ratio against the dataset's graph sizes:
    /// SortPooling keeps `k` vertices where a `ratio` fraction of graphs
    /// have at least `k` vertices (as in the reference DGCNN); the
    /// adaptive head maps the ratio to its output grid.
    fn resolve_k(&self, graph_sizes: &[usize]) -> usize {
        let mut sizes: Vec<usize> = graph_sizes.to_vec();
        sizes.sort_unstable();
        let idx = ((1.0 - self.pooling_ratio) * sizes.len() as f64) as usize;
        let k = sizes.get(idx.min(sizes.len().saturating_sub(1))).copied().unwrap_or(16);
        // The Conv1D column needs k/2 >= kernel to be well-formed.
        k.max(2 * self.conv1d_kernel).max(10)
    }

    /// Materializes the model configuration for a dataset with the given
    /// number of classes and graph-size distribution.
    pub fn to_model_config(&self, num_classes: usize, graph_sizes: &[usize]) -> DgcnnConfig {
        let head = match self.head {
            HeadKind::Adaptive => {
                let side = (self.pooling_ratio * 10.0).round().clamp(2.0, 8.0) as usize;
                PoolingHead::AdaptiveMaxPool { grid: (side, side), channels: self.conv2d_channels }
            }
            HeadKind::SortConv1d => PoolingHead::SortPoolConv1d {
                k: self.resolve_k(graph_sizes),
                channels: self.conv1d_channels,
                kernel: self.conv1d_kernel,
            },
            HeadKind::SortWeighted => PoolingHead::SortPoolWeightedVertices {
                k: self.resolve_k(graph_sizes),
            },
        };
        let mut config = DgcnnConfig::new(num_classes, head);
        config.conv_sizes = self.conv_sizes.clone();
        config.dropout = self.dropout;
        config
    }

    /// Materializes the training configuration.
    ///
    /// Two knobs deviate from the library defaults, calibrated for the
    /// reduced-scale corpora this reproduction trains on: the Adam
    /// learning rate is 5e-3 (at a few hundred samples the run sees two
    /// orders of magnitude fewer optimizer steps than the paper's
    /// 10k-sample × 100-epoch regime, so each step must move further) and
    /// the plateau patience is 5 epochs (validation loss on sub-100-sample
    /// folds is noisy enough that the paper's patience of 2 triggers the
    /// 10× decay spuriously and freezes training).
    pub fn to_train_config(&self, epochs: usize, seed: u64) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: self.batch_size,
            weight_decay: self.weight_decay,
            learning_rate: 5e-3,
            lr_patience: 5,
            seed,
            ..TrainConfig::default()
        }
    }
}

/// The result of evaluating one grid point.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The hyperparameters evaluated.
    pub params: HyperParams,
    /// Full cross-validation outcome.
    pub cv: CvOutcome,
}

/// Exhaustive grid search with K-fold cross-validation per setting
/// (Section V-B's tuning procedure).
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Settings to evaluate.
    pub grid: Vec<HyperParams>,
    /// Epochs per training run.
    pub epochs: usize,
    /// CV folds (the paper uses 5).
    pub folds: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl GridSearch {
    /// Runs the search, returning every outcome sorted by ascending mean
    /// validation loss (the winner first). `progress` is invoked after
    /// each setting with `(index, total, outcome)`.
    pub fn run(
        &self,
        inputs: &[GraphInput],
        labels: &[usize],
        num_classes: usize,
        mut progress: impl FnMut(usize, usize, &SearchOutcome),
    ) -> Vec<SearchOutcome> {
        let graph_sizes: Vec<usize> = inputs.iter().map(GraphInput::vertex_count).collect();
        let mut outcomes = Vec::with_capacity(self.grid.len());
        for (i, params) in self.grid.iter().enumerate() {
            let model_config = params.to_model_config(num_classes, &graph_sizes);
            let train_config = params.to_train_config(self.epochs, self.seed);
            let cv = cross_validate(&model_config, &train_config, inputs, labels, self.folds);
            let outcome = SearchOutcome { params: params.clone(), cv };
            progress(i, self.grid.len(), &outcome);
            outcomes.push(outcome);
        }
        outcomes.sort_by(|a, b| {
            a.cv.mean_val_loss
                .partial_cmp(&b.cv.mean_val_loss)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_has_exactly_208_settings() {
        let grid = HyperParams::full_grid();
        assert_eq!(grid.len(), 208);
        let adaptive = grid.iter().filter(|p| p.head == HeadKind::Adaptive).count();
        let conv1d = grid.iter().filter(|p| p.head == HeadKind::SortConv1d).count();
        let weighted = grid.iter().filter(|p| p.head == HeadKind::SortWeighted).count();
        // Section V-B: 64 adaptive, 96 sort+conv1d, 48 sort+WeightedVertices.
        assert_eq!(adaptive, 64);
        assert_eq!(conv1d, 96);
        assert_eq!(weighted, 48);
    }

    #[test]
    fn grid_settings_are_unique() {
        let grid = HyperParams::full_grid();
        for (i, a) in grid.iter().enumerate() {
            for b in &grid[i + 1..] {
                assert_ne!(a, b, "duplicate grid entry");
            }
        }
    }

    #[test]
    fn narrow_conv_stack_only_with_sort_pooling() {
        for p in HyperParams::full_grid() {
            if p.conv_sizes == vec![32, 32, 32, 1] {
                assert_ne!(p.head, HeadKind::Adaptive, "footnote 1 of Table II");
            }
        }
    }

    #[test]
    fn model_configs_materialize_and_validate() {
        let sizes: Vec<usize> = (10..110).collect();
        for p in HyperParams::reduced_grid() {
            let config = p.to_model_config(9, &sizes);
            config.validate();
            assert_eq!(config.num_classes, 9);
        }
    }

    #[test]
    fn resolve_k_respects_ratio_ordering() {
        let sizes: Vec<usize> = (10..210).collect();
        let mut small = HyperParams::paper_default();
        small.head = HeadKind::SortWeighted;
        small.pooling_ratio = 0.2;
        let mut big = small.clone();
        big.pooling_ratio = 0.64;
        // A higher ratio keeps more graphs "large enough", i.e. smaller k.
        assert!(small.resolve_k(&sizes) > big.resolve_k(&sizes));
    }

    #[test]
    fn grid_search_ranks_by_validation_loss() {
        use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
        use magic_model::GraphInput;
        use magic_tensor::{Rng64, Tensor};

        // Tiny separable 2-class corpus.
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..16 {
            let mut rng = Rng64::new(700 + i as u64);
            let n = 6;
            let mut g = DiGraph::new(n);
            for v in 0..n - 1 {
                g.add_edge(v, v + 1);
            }
            let hi = if i % 2 == 1 { 6.0 } else { 1.0 };
            let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, hi, &mut rng);
            inputs.push(GraphInput::from_acfg(&Acfg::new(g, attrs)));
            labels.push(i % 2);
        }

        let mut cheap = HyperParams::paper_default();
        cheap.head = HeadKind::SortWeighted;
        let mut other = cheap.clone();
        other.pooling_ratio = 0.64;
        let search = GridSearch { grid: vec![cheap, other], epochs: 3, folds: 2, seed: 1 };
        let mut progress_calls = 0;
        let ranked = search.run(&inputs, &labels, 2, |_, total, _| {
            assert_eq!(total, 2);
            progress_calls += 1;
        });
        assert_eq!(progress_calls, 2);
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].cv.mean_val_loss <= ranked[1].cv.mean_val_loss);
    }

    #[test]
    fn train_config_carries_grid_values() {
        let mut p = HyperParams::paper_default();
        p.batch_size = 40;
        p.weight_decay = 5e-4;
        let tc = p.to_train_config(7, 3);
        assert_eq!(tc.epochs, 7);
        assert_eq!(tc.batch_size, 40);
        assert_eq!(tc.weight_decay, 5e-4);
        assert_eq!(tc.seed, 3);
    }
}
