//! Model checkpointing: persist a trained DGCNN's weights and restore
//! them into a freshly constructed model.
//!
//! The format is line-oriented JSON (one parameter per line) — trivially
//! diffable and stable across versions of this crate.

use magic_model::Dgcnn;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

#[derive(Debug, Serialize, Deserialize)]
struct ParamRecord {
    name: String,
    shape: Vec<usize>,
    values: Vec<f32>,
}

/// Error from checkpoint loading.
#[derive(Debug)]
pub enum CheckpointError {
    /// A line was not valid JSON.
    Malformed(serde_json::Error),
    /// The checkpoint names a parameter the model does not have.
    UnknownParam(String),
    /// A parameter's shape does not match the model's.
    ShapeMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Malformed(e) => write!(f, "malformed checkpoint: {e}"),
            CheckpointError::UnknownParam(n) => write!(f, "unknown parameter {n:?}"),
            CheckpointError::ShapeMismatch(n) => write!(f, "shape mismatch for parameter {n:?}"),
        }
    }
}

impl Error for CheckpointError {}

/// Serializes all model weights.
pub fn save_weights(model: &Dgcnn) -> String {
    let mut out = String::new();
    for (name, tensor) in model.store().iter() {
        let record = ParamRecord {
            name: name.to_string(),
            shape: tensor.shape().dims().to_vec(),
            values: tensor.as_slice().to_vec(),
        };
        out.push_str(&serde_json::to_string(&record).expect("serializable record"));
        out.push('\n');
    }
    out
}

/// Restores weights saved by [`save_weights`] into `model`, which must
/// have been built from the same configuration.
///
/// # Errors
///
/// Returns [`CheckpointError`] on malformed input, unknown parameter
/// names or shape mismatches.
pub fn load_weights(model: &mut Dgcnn, text: &str) -> Result<(), CheckpointError> {
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let record: ParamRecord = serde_json::from_str(line).map_err(CheckpointError::Malformed)?;
        let id = model
            .store()
            .find(&record.name)
            .ok_or_else(|| CheckpointError::UnknownParam(record.name.clone()))?;
        let target = model.store_mut().value_mut(id);
        if target.shape().dims() != record.shape.as_slice()
            || target.len() != record.values.len()
        {
            return Err(CheckpointError::ShapeMismatch(record.name));
        }
        target.as_mut_slice().copy_from_slice(&record.values);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
    use magic_model::{DgcnnConfig, GraphInput, PoolingHead};
    use magic_tensor::{Rng64, Tensor};

    fn sample_input() -> GraphInput {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let mut rng = Rng64::new(1);
        GraphInput::from_acfg(&Acfg::new(
            g,
            Tensor::rand_uniform([4, NUM_ATTRIBUTES], 0.0, 3.0, &mut rng),
        ))
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(8));
        let trained = Dgcnn::new(&config, 42);
        let text = save_weights(&trained);

        // A differently seeded model predicts differently until loaded.
        let mut fresh = Dgcnn::new(&config, 7);
        let input = sample_input();
        assert_ne!(trained.predict(&input), fresh.predict(&input));
        load_weights(&mut fresh, &text).unwrap();
        assert_eq!(trained.predict(&input), fresh.predict(&input));
    }

    #[test]
    fn load_rejects_unknown_parameter() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(8));
        let mut model = Dgcnn::new(&config, 0);
        let bogus = r#"{"name":"nope.weight","shape":[1],"values":[0.0]}"#;
        assert!(matches!(
            load_weights(&mut model, bogus),
            Err(CheckpointError::UnknownParam(_))
        ));
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(8));
        let mut model = Dgcnn::new(&config, 0);
        let bad = r#"{"name":"fc2.bias","shape":[1],"values":[0.0]}"#;
        assert!(matches!(
            load_weights(&mut model, bad),
            Err(CheckpointError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn load_rejects_garbage() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(8));
        let mut model = Dgcnn::new(&config, 0);
        assert!(matches!(
            load_weights(&mut model, "not json"),
            Err(CheckpointError::Malformed(_))
        ));
    }
}
