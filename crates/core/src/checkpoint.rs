//! Model checkpointing: persist a trained DGCNN's weights and restore
//! them into a freshly constructed model.
//!
//! The format is line-oriented JSON (one parameter per line) — trivially
//! diffable and stable across versions of this crate.

use magic_json::Value;
use magic_model::Dgcnn;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

struct ParamRecord {
    name: String,
    shape: Vec<usize>,
    values: Vec<f32>,
}

/// Error from checkpoint loading.
#[derive(Debug)]
pub enum CheckpointError {
    /// A line was not valid JSON or lacked a required field.
    Malformed(String),
    /// The checkpoint names a parameter the model does not have.
    UnknownParam(String),
    /// A parameter's shape does not match the model's.
    ShapeMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Malformed(e) => write!(f, "malformed checkpoint: {e}"),
            CheckpointError::UnknownParam(n) => write!(f, "unknown parameter {n:?}"),
            CheckpointError::ShapeMismatch(n) => write!(f, "shape mismatch for parameter {n:?}"),
        }
    }
}

impl Error for CheckpointError {}

/// Serializes all model weights.
///
/// Weights are written with Rust's shortest-roundtrip `f32` formatting;
/// reading them back through an `f64` parse and narrowing restores the
/// exact bits (covered by the roundtrip test in `magic-json`).
pub fn save_weights(model: &Dgcnn) -> String {
    let _span = magic_obs::span(magic_obs::stage::CHECKPOINT_SAVE);
    let mut out = String::new();
    for (name, tensor) in model.store().iter() {
        out.push_str("{\"name\":");
        out.push_str(&Value::String(name.to_string()).to_string());
        out.push_str(",\"shape\":[");
        for (i, d) in tensor.shape().dims().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{d}");
        }
        out.push_str("],\"values\":[");
        for (i, v) in tensor.as_slice().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("]}\n");
    }
    out
}

/// Parses one checkpoint line into its record.
fn parse_record(line: &str) -> Result<ParamRecord, CheckpointError> {
    let malformed = |what: &str| CheckpointError::Malformed(format!("{what} in {line:?}"));
    let doc = magic_json::from_str(line).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
    let name = doc["name"].as_str().ok_or_else(|| malformed("missing name"))?.to_string();
    let shape = doc["shape"]
        .as_array()
        .ok_or_else(|| malformed("missing shape"))?
        .iter()
        .map(|d| d.as_u64().map(|d| d as usize))
        .collect::<Option<Vec<usize>>>()
        .ok_or_else(|| malformed("non-integer shape"))?;
    let values = doc["values"]
        .as_array()
        .ok_or_else(|| malformed("missing values"))?
        .iter()
        .map(|v| v.as_f64().map(|v| v as f32))
        .collect::<Option<Vec<f32>>>()
        .ok_or_else(|| malformed("non-numeric values"))?;
    Ok(ParamRecord { name, shape, values })
}

/// Restores weights saved by [`save_weights`] into `model`, which must
/// have been built from the same configuration.
///
/// # Errors
///
/// Returns [`CheckpointError`] on malformed input, unknown parameter
/// names or shape mismatches.
pub fn load_weights(model: &mut Dgcnn, text: &str) -> Result<(), CheckpointError> {
    let _span = magic_obs::span(magic_obs::stage::CHECKPOINT_LOAD);
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let record = parse_record(line)?;
        let id = model
            .store()
            .find(&record.name)
            .ok_or_else(|| CheckpointError::UnknownParam(record.name.clone()))?;
        let target = model.store_mut().value_mut(id);
        if target.shape().dims() != record.shape.as_slice()
            || target.len() != record.values.len()
        {
            return Err(CheckpointError::ShapeMismatch(record.name));
        }
        target.as_mut_slice().copy_from_slice(&record.values);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
    use magic_model::{DgcnnConfig, GraphInput, PoolingHead};
    use magic_tensor::{Rng64, Tensor};

    fn sample_input() -> GraphInput {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let mut rng = Rng64::new(1);
        GraphInput::from_acfg(&Acfg::new(
            g,
            Tensor::rand_uniform([4, NUM_ATTRIBUTES], 0.0, 3.0, &mut rng),
        ))
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(8));
        let trained = Dgcnn::new(&config, 42);
        let text = save_weights(&trained);

        // A differently seeded model predicts differently until loaded.
        let mut fresh = Dgcnn::new(&config, 7);
        let input = sample_input();
        assert_ne!(trained.predict(&input), fresh.predict(&input));
        load_weights(&mut fresh, &text).unwrap();
        assert_eq!(trained.predict(&input), fresh.predict(&input));
    }

    #[test]
    fn load_rejects_unknown_parameter() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(8));
        let mut model = Dgcnn::new(&config, 0);
        let bogus = r#"{"name":"nope.weight","shape":[1],"values":[0.0]}"#;
        assert!(matches!(
            load_weights(&mut model, bogus),
            Err(CheckpointError::UnknownParam(_))
        ));
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(8));
        let mut model = Dgcnn::new(&config, 0);
        let bad = r#"{"name":"fc2.bias","shape":[1],"values":[0.0]}"#;
        assert!(matches!(
            load_weights(&mut model, bad),
            Err(CheckpointError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn load_rejects_garbage() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(8));
        let mut model = Dgcnn::new(&config, 0);
        assert!(matches!(
            load_weights(&mut model, "not json"),
            Err(CheckpointError::Malformed(_))
        ));
    }
}
