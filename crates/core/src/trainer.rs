//! Model training: Adam over the Eq. (5) loss with the Section V-B
//! learning-rate schedule.
//!
//! # Threading model
//!
//! The mini-batch loop fans per-sample forward/backward passes across a
//! [`BatchExecutor`]: workers share the read-only parameter store
//! (`ParamStore::bind` takes `&self`) and each batch position owns a
//! [`GradBuffer`] that is folded back into the store **in batch order**
//! once all samples finish. Because the float additions happen in the
//! same order as the serial loop, and dropout noise comes from per-sample
//! [`Rng64::for_sample`] streams rather than a shared generator, training
//! is bitwise identical for any `train_workers` value.
//!
//! With [`TrainConfig::batched`] the mini-batch loop instead fuses every
//! batch into one block-diagonal pass ([`GraphBatch`]) on a single tape:
//! one SpMM per graph-conv layer, one GEMM per head stage, with
//! per-sample gradient contributions combined in batch order inside the
//! ops. The two modes are bitwise identical — same losses, weights, and
//! history — so `batched` is purely a throughput knob; intra-op
//! parallelism then comes from [`magic_tensor::set_intra_op_threads`]
//! rather than per-sample fan-out.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Mutex;
use std::time::Instant;

use magic_autograd::{profile, OpProfile, Tape};
use magic_data::{batches, StreamedCorpus};
use magic_model::{Dgcnn, GraphBatch, GraphInput};
use magic_nn::{Adam, GradBuffer, Optimizer, ParamStore, ReduceLrOnPlateau};
use magic_tensor::Rng64;

use crate::executor::{executor_for, run_indexed, BatchExecutor, SerialExecutor};

/// Where training samples come from: a fully materialized in-memory
/// slice, or a `magic-acfg/1` cache streamed record-by-record.
///
/// The two sources are bitwise interchangeable: sample identity is the
/// *global index*, which addresses the same canonical corpus order
/// either way, so shuffling, batching, dropout streams
/// ([`Rng64::for_sample`]), and every reduction order are untouched by
/// the choice of source.
#[derive(Clone, Copy)]
enum SampleSource<'a> {
    /// All graph inputs resident in memory.
    Ram(&'a [GraphInput]),
    /// Graph inputs decoded on demand from cache shards.
    Stream(&'a StreamedCorpus),
}

impl SampleSource<'_> {
    fn len(&self) -> usize {
        match self {
            SampleSource::Ram(inputs) => inputs.len(),
            SampleSource::Stream(corpus) => corpus.len(),
        }
    }
}

/// Iterates `idx` in `chunk_size` chunks, decoding each chunk's records
/// into [`GraphInput`]s on a background thread one chunk ahead of the
/// consumer (double-buffering through a bounded channel of depth 1), so
/// the consumer stays compute-bound while the next chunk's IO + decode
/// overlaps it.
///
/// # Panics
///
/// Panics if a record fails to decode mid-run (shards are fully
/// validated when the corpus is opened, so this means the cache changed
/// underneath the trainer).
fn with_prefetched_chunks(
    corpus: &StreamedCorpus,
    idx: &[usize],
    chunk_size: usize,
    mut consume: impl FnMut(&[usize], &[GraphInput]),
) {
    let chunk_list: Vec<Vec<usize>> = batches(idx, chunk_size);
    std::thread::scope(|scope| {
        let (tx, rx) = sync_channel::<Vec<GraphInput>>(1);
        let fetch_list = chunk_list.clone();
        scope.spawn(move || {
            for chunk in &fetch_list {
                let fetched =
                    corpus.fetch(chunk).expect("validated cache shard failed mid-epoch");
                if tx.send(fetched).is_err() {
                    break;
                }
            }
        });
        for chunk in &chunk_list {
            let fetched = rx.recv().expect("prefetch thread delivers every chunk");
            consume(chunk, &fetched);
        }
    });
}

/// Training hyperparameters not covered by the model architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training split (the paper uses 100).
    pub epochs: usize,
    /// Mini-batch size (Table II: 10 or 40).
    pub batch_size: usize,
    /// Initial Adam learning rate.
    pub learning_rate: f32,
    /// L2 weight regularization factor (Table II: 1e-4 or 5e-4).
    pub weight_decay: f32,
    /// Seed for shuffling and the per-sample dropout streams.
    pub seed: u64,
    /// Cap on the global gradient norm (0 disables clipping).
    pub grad_clip: f32,
    /// Learning-rate decay divisor on plateau (paper: 10).
    pub lr_decay_factor: f32,
    /// Consecutive rising-validation-loss epochs before decaying
    /// (paper: 2). On very small validation splits the loss is noisy
    /// enough that the paper's setting fires spuriously; raise this when
    /// training on reduced-scale corpora.
    pub lr_patience: usize,
    /// Worker threads for mini-batch fan-out and evaluation. `0` means
    /// "auto" (the machine's available parallelism); `1` trains on the
    /// calling thread. The result is bitwise identical for every value —
    /// this knob only changes wall-clock time.
    pub train_workers: usize,
    /// Fuse each mini-batch into one block-diagonal pass instead of
    /// fanning per-sample tapes across workers. The batched path runs
    /// the whole batch through single large SpMM/GEMM calls on one tape
    /// and unstacks gradients per sample inside the ops, so it is
    /// bitwise identical to the per-sample path — losses, weights, and
    /// history match exactly — while spending far less time in op glue.
    pub batched: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            batch_size: 10,
            learning_rate: 1e-3,
            weight_decay: 1e-4,
            seed: 0,
            grad_clip: 5.0,
            lr_decay_factor: 10.0,
            lr_patience: 2,
            train_workers: 0,
            batched: false,
        }
    }
}

/// Per-epoch bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index, from 0.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Mean validation loss (the model-selection criterion of V-B).
    pub val_loss: f32,
    /// Validation accuracy.
    pub val_accuracy: f64,
    /// Learning rate in effect during the epoch.
    pub learning_rate: f32,
}

/// The result of a training run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// One entry per epoch.
    pub history: Vec<EpochStats>,
    /// Minimum validation loss over all epochs (the paper's model score).
    pub best_val_loss: f32,
}

impl TrainOutcome {
    /// The *first* epoch achieving the minimum validation loss.
    ///
    /// Ties go to the earliest epoch: with an identical score, the model
    /// that got there in fewer updates is the one early stopping would
    /// have kept.
    pub fn best_epoch(&self) -> usize {
        let mut best = 0;
        let mut best_loss = f32::INFINITY;
        for stats in &self.history {
            if stats.val_loss < best_loss {
                best_loss = stats.val_loss;
                best = stats.epoch;
            }
        }
        best
    }
}

/// Trains a [`Dgcnn`] on pre-extracted graph inputs.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics on a zero batch size or zero epochs.
    pub fn new(config: TrainConfig) -> Self {
        assert!(config.batch_size > 0, "batch size must be positive");
        assert!(config.epochs > 0, "need at least one epoch");
        Trainer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `model` on `train_idx` and validates on `val_idx` after
    /// every epoch, decaying the learning rate 10× after two consecutive
    /// epochs of rising validation loss (Section V-B).
    ///
    /// Per-sample work runs on the executor selected by
    /// [`TrainConfig::train_workers`]; the outcome (losses, weights,
    /// history) is bitwise independent of the worker count.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or a label exceeds the model's
    /// class count.
    pub fn train(
        &self,
        model: &mut Dgcnn,
        inputs: &[GraphInput],
        labels: &[usize],
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> TrainOutcome {
        self.train_source(model, SampleSource::Ram(inputs), labels, train_idx, val_idx)
    }

    /// [`train`](Self::train), but streaming samples from a validated
    /// `magic-acfg/1` cache instead of a resident slice: each
    /// mini-batch's records are decoded by a background prefetch thread
    /// one batch ahead of the compute (double-buffered through a
    /// bounded channel), so resident memory stays bounded by two
    /// batches plus the shard indices while epoch time stays
    /// compute-bound.
    ///
    /// Because samples are addressed by the same global indices as the
    /// in-memory path — same shuffle, same batch composition, same
    /// [`Rng64::for_sample`] dropout streams, same reduction orders —
    /// the outcome is **bitwise identical** to [`train`](Self::train)
    /// on the equivalently ordered in-memory corpus, for every worker
    /// count and in both execution modes.
    ///
    /// # Panics
    ///
    /// As [`train`](Self::train); additionally panics if a cache record
    /// fails to decode mid-run (the corpus is fully validated at open,
    /// so this means the shard files changed underneath the trainer).
    pub fn train_streamed(
        &self,
        model: &mut Dgcnn,
        corpus: &StreamedCorpus,
        labels: &[usize],
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> TrainOutcome {
        self.train_source(model, SampleSource::Stream(corpus), labels, train_idx, val_idx)
    }

    fn train_source(
        &self,
        model: &mut Dgcnn,
        source: SampleSource<'_>,
        labels: &[usize],
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> TrainOutcome {
        assert_eq!(source.len(), labels.len(), "one label per input");
        let num_classes = model.config().num_classes;
        for &l in labels {
            assert!(l < num_classes, "label {l} exceeds {num_classes} classes");
        }

        let executor = executor_for(self.config.train_workers);
        // One reusable tape per worker lane (lanes run their jobs
        // sequentially, so the lock is never contended) and one gradient
        // buffer per batch position, so the reduction below can replay
        // the serial float-addition order exactly.
        let tapes: Vec<Mutex<Tape>> =
            (0..executor.workers()).map(|_| Mutex::new(Tape::new())).collect();
        // The batched path folds the tape's gradients straight into the
        // store, so the per-position slots exist only for the fan-out
        // path.
        let grad_slots: Vec<Mutex<GradBuffer>> = if self.config.batched {
            Vec::new()
        } else {
            (0..self.config.batch_size)
                .map(|_| Mutex::new(GradBuffer::for_store(model.store())))
                .collect()
        };

        let mut rng = Rng64::new(self.config.seed);
        let mut optimizer = Adam::new(self.config.learning_rate, self.config.weight_decay);
        let mut scheduler =
            ReduceLrOnPlateau::new(self.config.lr_decay_factor, self.config.lr_patience, 1e-7);
        let mut history = Vec::with_capacity(self.config.epochs);
        let mut best_val_loss = f32::INFINITY;

        let _train_span = magic_obs::span_fields(
            magic_obs::stage::TRAIN,
            &[
                ("epochs", self.config.epochs as f64),
                ("train_samples", train_idx.len() as f64),
                ("workers", executor.workers() as f64),
            ],
        );

        let run_start = Instant::now();
        let mut order: Vec<usize> = train_idx.to_vec();
        // Running totals behind the per-epoch allocation histograms: lane
        // workspace stats and the global `mem` counters are cumulative, so
        // each epoch emits the delta against the previous epoch's total.
        let mut prev_pool = magic_tensor::WorkspaceStats::default();
        let mut prev_allocations = magic_tensor::mem::stats().allocations;
        for epoch in 0..self.config.epochs {
            // Telemetry is observational only: timers are read but never
            // feed back into the numerics, so a traced run stays bitwise
            // identical to an untraced one.
            let traced = magic_obs::is_enabled();
            let _epoch_span =
                magic_obs::span_fields(magic_obs::stage::TRAIN_EPOCH, &[("epoch", epoch as f64)]);
            let worker_busy: Vec<AtomicU64> =
                (0..executor.workers()).map(|_| AtomicU64::new(0)).collect();
            let mut fanout_us = 0u64;
            let mut update_us = 0u64;
            // Host-side pseudo-op self times (ns), attributed alongside
            // the tape ops so `magic profile` can explain the epoch's
            // wall-clock: param binding and gradient accumulation happen
            // inside worker jobs (atomic adds), reduce/clip/step and
            // evaluation happen on this thread.
            let bind_ns = AtomicU64::new(0);
            let accum_ns = AtomicU64::new(0);
            let mut reduce_ns = 0u64;
            let mut clip_ns = 0u64;
            let mut step_ns = 0u64;
            let mut batch_graph_ns = 0u64;
            for tape in &tapes {
                tape.lock().expect("unpoisoned tape").set_profiling(traced);
            }
            if traced {
                magic_tensor::mem::reset_peak();
            }

            rng.shuffle(&mut order);
            let mut train_loss_total = 0.0;
            // The mini-batch body, generic over where samples live: the
            // streamed source hands in the batch's prefetched records
            // (parallel to batch positions), the in-memory source
            // resolves positions against the resident slice. Everything
            // numeric — batch composition, dropout streams, reduction
            // orders — depends only on the global indices in `batch`,
            // which is what keeps the two sources bitwise identical.
            let mut run_batch = |batch: &[usize], fetched: Option<&[GraphInput]>| {
                let input_at = |j: usize| -> &GraphInput {
                    match (fetched, source) {
                        (Some(f), _) => &f[j],
                        (None, SampleSource::Ram(inputs)) => &inputs[batch[j]],
                        (None, SampleSource::Stream(_)) => {
                            unreachable!("streamed batches are always prefetched")
                        }
                    }
                };
                if self.config.batched {
                    // One fused pass over the whole mini-batch on the
                    // lane-0 tape: assemble the block-diagonal batch
                    // graph, run forward/backward once, and fold the
                    // tape's gradients straight into the store. The
                    // batched ops combine per-sample contributions in
                    // batch order internally, so the result is bitwise
                    // identical to the fan-out path below.
                    let assemble_start = traced.then(Instant::now);
                    let members: Vec<&GraphInput> =
                        (0..batch.len()).map(&input_at).collect();
                    let graph_batch = GraphBatch::new(&members);
                    if let Some(start) = assemble_start {
                        batch_graph_ns += start.elapsed().as_nanos() as u64;
                    }
                    let busy_start = traced.then(Instant::now);
                    let mut tape = tapes[0].lock().expect("unpoisoned tape");
                    tape.reset();
                    let bind_start = busy_start.map(|_| Instant::now());
                    let binding = model.store().bind(&mut tape);
                    if let Some(start) = bind_start {
                        bind_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    }
                    // Same per-sample dropout streams as the fan-out
                    // path, so both modes see identical noise.
                    let mut sample_rngs: Vec<Rng64> = batch
                        .iter()
                        .map(|&i| Rng64::for_sample(self.config.seed, epoch as u64, i as u64))
                        .collect();
                    let lp = model.forward_batched(
                        &mut tape,
                        &binding,
                        &graph_batch,
                        true,
                        &mut sample_rngs,
                    );
                    let batch_labels: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
                    let row_losses = tape.nll_loss_rows(lp, batch_labels);
                    let total = tape.sum(row_losses);
                    let losses: Vec<f32> =
                        (0..batch.len()).map(|j| tape.value(row_losses).get2(j, 0)).collect();
                    tape.backward(total);
                    if let Some(start) = busy_start {
                        let us = start.elapsed().as_micros() as u64;
                        worker_busy[0].fetch_add(us, Ordering::Relaxed);
                        fanout_us += us;
                    }

                    let update_start = traced.then(Instant::now);
                    let store = model.store_mut();
                    store.zero_grads();
                    // A single accumulate replays the per-sample reduce
                    // chain: the tape gradient is already the batch-order
                    // sum of per-sample contributions.
                    store.accumulate_grads(&tape, &binding);
                    drop(tape);
                    for &loss in &losses {
                        train_loss_total += loss;
                    }
                    if let Some(start) = update_start {
                        reduce_ns += start.elapsed().as_nanos() as u64;
                    }
                    self.clip_and_step(
                        store,
                        &mut optimizer,
                        batch.len(),
                        traced,
                        &mut clip_ns,
                        &mut step_ns,
                    );
                    if let Some(start) = update_start {
                        update_us += start.elapsed().as_micros() as u64;
                    }
                    return;
                }
                let store = model.store();
                let fanout_start = traced.then(Instant::now);
                let losses: Vec<f32> = run_indexed(executor.as_ref(), batch.len(), |worker, j| {
                    let busy_start = traced.then(Instant::now);
                    let i = batch[j];
                    let mut tape = tapes[worker].lock().expect("unpoisoned tape");
                    tape.reset();
                    let bind_start = busy_start.map(|_| Instant::now());
                    let binding = store.bind(&mut tape);
                    if let Some(start) = bind_start {
                        bind_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    }
                    // Dropout draws come from a stream keyed on
                    // (seed, epoch, sample), not on batch composition or
                    // scheduling, so every worker count sees the same
                    // noise.
                    let mut sample_rng =
                        Rng64::for_sample(self.config.seed, epoch as u64, i as u64);
                    let lp = model.forward(&mut tape, &binding, input_at(j), true, &mut sample_rng);
                    let loss = tape.nll_loss(lp, vec![labels[i]]);
                    let item = tape.value(loss).item();
                    tape.backward(loss);
                    let accum_start = busy_start.map(|_| Instant::now());
                    let mut buffer = grad_slots[j].lock().expect("unpoisoned grad slot");
                    buffer.zero();
                    buffer.accumulate(&tape, &binding);
                    if let Some(start) = accum_start {
                        accum_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    }
                    if let Some(start) = busy_start {
                        worker_busy[worker]
                            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
                    }
                    item
                });
                if let Some(start) = fanout_start {
                    fanout_us += start.elapsed().as_micros() as u64;
                }

                let update_start = traced.then(Instant::now);
                let store = model.store_mut();
                store.zero_grads();
                for (j, loss) in losses.iter().enumerate() {
                    train_loss_total += loss;
                    // Reduce in batch order — this is what makes the sum
                    // bitwise identical to the serial loop.
                    store.reduce(&grad_slots[j].lock().expect("unpoisoned grad slot"));
                }
                if let Some(start) = update_start {
                    reduce_ns += start.elapsed().as_nanos() as u64;
                }
                self.clip_and_step(
                    store,
                    &mut optimizer,
                    batch.len(),
                    traced,
                    &mut clip_ns,
                    &mut step_ns,
                );
                if let Some(start) = update_start {
                    update_us += start.elapsed().as_micros() as u64;
                }
            };
            match source {
                SampleSource::Ram(_) => {
                    for batch in batches(&order, self.config.batch_size) {
                        run_batch(&batch, None);
                    }
                }
                SampleSource::Stream(corpus) => {
                    with_prefetched_chunks(
                        corpus,
                        &order,
                        self.config.batch_size,
                        |batch, fetched| run_batch(batch, Some(fetched)),
                    );
                }
            }
            let train_loss = train_loss_total / train_idx.len().max(1) as f32;

            let eval_start = traced.then(Instant::now);
            // Evaluation reuses the warm worker-lane tapes so inference
            // buffers also come from the recycled pools. Profiling is
            // switched off first: eval time is already attributed to the
            // `evaluate` host row, so letting eval ops record into the
            // lane profiles would double-count it.
            for tape in &tapes {
                tape.lock().expect("unpoisoned tape").set_profiling(false);
            }
            let (val_loss, val_accuracy) = match source {
                SampleSource::Ram(inputs) => {
                    if self.config.batched {
                        evaluate_batched_on_tape(
                            &tapes[0],
                            self.config.batch_size,
                            model,
                            inputs,
                            labels,
                            val_idx,
                        )
                    } else {
                        evaluate_on_tapes(executor.as_ref(), &tapes, model, inputs, labels, val_idx)
                    }
                }
                SampleSource::Stream(corpus) => {
                    if self.config.batched {
                        evaluate_batched_streamed(
                            &tapes[0],
                            self.config.batch_size,
                            model,
                            corpus,
                            labels,
                            val_idx,
                        )
                    } else {
                        evaluate_streamed_on_tapes(
                            executor.as_ref(),
                            &tapes,
                            self.config.batch_size,
                            model,
                            corpus,
                            labels,
                            val_idx,
                        )
                    }
                }
            };
            let eval_ns = eval_start.map_or(0, |s| s.elapsed().as_nanos() as u64);
            let learning_rate = optimizer.learning_rate();
            scheduler.observe(val_loss, &mut optimizer);
            best_val_loss = best_val_loss.min(val_loss);

            if traced {
                let epoch_field = ("epoch", epoch as f64);
                for (worker, busy) in worker_busy.iter().enumerate() {
                    magic_obs::histogram_fields(
                        magic_obs::stage::H_WORKER_BUSY_US,
                        busy.load(Ordering::Relaxed) as f64,
                        &[("worker", worker as f64), epoch_field],
                    );
                }
                magic_obs::histogram_fields(
                    magic_obs::stage::H_EPOCH_FANOUT_US,
                    fanout_us as f64,
                    &[epoch_field],
                );
                magic_obs::histogram_fields(
                    magic_obs::stage::H_EPOCH_UPDATE_US,
                    update_us as f64,
                    &[epoch_field],
                );
                magic_obs::counter(magic_obs::stage::C_TRAIN_SAMPLES, order.len() as f64);
                let pool_total = tapes.iter().fold(
                    magic_tensor::WorkspaceStats::default(),
                    |acc, tape| {
                        let s = tape.lock().expect("unpoisoned tape").workspace_stats();
                        magic_tensor::WorkspaceStats {
                            hits: acc.hits + s.hits,
                            misses: acc.misses + s.misses,
                        }
                    },
                );
                magic_obs::histogram_fields(
                    magic_obs::stage::H_POOL_HITS,
                    (pool_total.hits - prev_pool.hits) as f64,
                    &[epoch_field],
                );
                magic_obs::histogram_fields(
                    magic_obs::stage::H_POOL_MISSES,
                    (pool_total.misses - prev_pool.misses) as f64,
                    &[epoch_field],
                );
                prev_pool = pool_total;
                if magic_tensor::mem::is_enabled() {
                    let stats = magic_tensor::mem::stats();
                    magic_obs::histogram_fields(
                        magic_obs::stage::H_MEM_PEAK_BYTES,
                        stats.peak_bytes as f64,
                        &[epoch_field],
                    );
                    magic_obs::histogram_fields(
                        magic_obs::stage::H_ALLOC_COUNT,
                        stats.allocations.saturating_sub(prev_allocations) as f64,
                        &[epoch_field],
                    );
                    prev_allocations = stats.allocations;
                }
                let busy_ns: u64 = worker_busy
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed).saturating_mul(1_000))
                    .sum();
                self.flush_op_profiles(
                    &tapes,
                    epoch,
                    order.len() as u64,
                    busy_ns,
                    &[
                        (magic_obs::stage::OP_HOST_BIND, order.len() as u64, bind_ns.load(Ordering::Relaxed)),
                        (magic_obs::stage::OP_HOST_ACCUMULATE, order.len() as u64, accum_ns.load(Ordering::Relaxed)),
                        (magic_obs::stage::OP_HOST_REDUCE, order.len() as u64, reduce_ns),
                        (magic_obs::stage::OP_HOST_CLIP, num_batches(order.len(), self.config.batch_size), clip_ns),
                        (magic_obs::stage::OP_HOST_STEP, num_batches(order.len(), self.config.batch_size), step_ns),
                        (magic_obs::stage::OP_HOST_EVALUATE, 1, eval_ns),
                        (
                            magic_obs::stage::OP_HOST_BATCH_GRAPH,
                            num_batches(order.len(), self.config.batch_size),
                            batch_graph_ns,
                        ),
                    ],
                );
            }
            if magic_obs::log_enabled(magic_obs::Level::Info) {
                // Live progress/ETA line: mean epoch time so far projects
                // the remaining wall-clock.
                let done = epoch + 1;
                let elapsed = run_start.elapsed().as_secs_f64();
                let per_epoch = elapsed / done as f64;
                let eta = per_epoch * (self.config.epochs - done) as f64;
                magic_obs::log(
                    magic_obs::Level::Info,
                    format!(
                        "epoch {done}/{}: train loss {train_loss:.4}, val loss {val_loss:.4}, \
                         val accuracy {:.1}%, lr {learning_rate:.2e} · {:.2}s/epoch · ETA {}",
                        self.config.epochs,
                        val_accuracy * 100.0,
                        per_epoch,
                        fmt_eta(eta),
                    ),
                );
            }
            history.push(EpochStats { epoch, train_loss, val_loss, val_accuracy, learning_rate });
        }
        TrainOutcome { history, best_val_loss }
    }

    /// Global gradient clipping followed by one optimizer step — the
    /// shared tail of the per-sample and batched update paths, so both
    /// modes apply exactly the same float operations.
    fn clip_and_step(
        &self,
        store: &mut ParamStore,
        optimizer: &mut Adam,
        batch_len: usize,
        traced: bool,
        clip_ns: &mut u64,
        step_ns: &mut u64,
    ) {
        let clip_start = traced.then(Instant::now);
        if self.config.grad_clip > 0.0 {
            let clip = self.config.grad_clip * batch_len as f32;
            store.clip_grad_norm(clip);
        }
        if let Some(start) = clip_start {
            *clip_ns += start.elapsed().as_nanos() as u64;
        }
        let step_start = traced.then(Instant::now);
        optimizer.step(store, batch_len);
        if let Some(start) = step_start {
            *step_ns += start.elapsed().as_nanos() as u64;
        }
    }

    /// Drains the per-lane tape profiles, merges them, and flushes one
    /// `op_profile` event per `(kind, phase, shape class)` row, plus one
    /// per host-side pseudo-op with nonzero time. Called once per traced
    /// epoch, inside the epoch span (so flamegraphs can attach the rows
    /// to it).
    fn flush_op_profiles(
        &self,
        tapes: &[Mutex<Tape>],
        epoch: usize,
        samples: u64,
        worker_busy_ns: u64,
        host_rows: &[(&str, u64, u64)],
    ) {
        let mut merged = OpProfile::new();
        for tape in tapes {
            let lane = tape.lock().expect("unpoisoned tape").take_profile();
            merged.merge(&lane);
        }
        // Whatever part of worker busy time neither the tape ops nor the
        // in-job host rows (bind, accumulate) explain is per-sample glue:
        // tape bookkeeping, forward wiring, the backward walk. Attribute
        // it explicitly so the profile sums to the epoch, not to ~95%.
        let in_job_ns: u64 = host_rows
            .iter()
            .filter(|(kind, ..)| {
                *kind == magic_obs::stage::OP_HOST_BIND
                    || *kind == magic_obs::stage::OP_HOST_ACCUMULATE
            })
            .map(|&(_, _, ns)| ns)
            .sum();
        let overhead_ns =
            worker_busy_ns.saturating_sub(merged.total_self_ns()).saturating_sub(in_job_ns);
        let epoch_field = [("epoch", epoch as f64)];
        for (key, stat) in merged.sorted_rows() {
            magic_obs::op_profile(
                key.kind,
                key.phase,
                &profile::bucket_label(key.shape_bucket),
                stat.calls,
                stat.self_ns,
                stat.flops,
                stat.bytes_out,
                &epoch_field,
            );
        }
        for &(kind, calls, self_ns) in host_rows {
            if self_ns > 0 {
                magic_obs::op_profile(
                    kind,
                    profile::PHASE_HOST,
                    "-",
                    calls,
                    self_ns,
                    0,
                    0,
                    &epoch_field,
                );
            }
        }
        if overhead_ns > 0 {
            magic_obs::op_profile(
                magic_obs::stage::OP_HOST_SAMPLE_OVERHEAD,
                profile::PHASE_HOST,
                "-",
                samples,
                overhead_ns,
                0,
                0,
                &epoch_field,
            );
        }
    }
}

/// Mini-batches an epoch of `n` samples splits into.
fn num_batches(n: usize, batch_size: usize) -> u64 {
    n.div_ceil(batch_size.max(1)) as u64
}

/// Formats a projected remaining duration at a human scale.
fn fmt_eta(seconds: f64) -> String {
    if seconds >= 3600.0 {
        format!("{:.1}h", seconds / 3600.0)
    } else if seconds >= 60.0 {
        format!("{:.1}m", seconds / 60.0)
    } else {
        format!("{seconds:.0}s")
    }
}

/// Mean validation loss and accuracy of `model` on `idx`, computed on the
/// calling thread.
pub fn evaluate(
    model: &Dgcnn,
    inputs: &[GraphInput],
    labels: &[usize],
    idx: &[usize],
) -> (f32, f64) {
    evaluate_with(&SerialExecutor, model, inputs, labels, idx)
}

/// Mean validation loss and accuracy of `model` on `idx`, fanning
/// per-sample inference across `executor`.
///
/// Per-sample losses are summed in index order afterwards, so the result
/// is identical to [`evaluate`] for any executor.
pub fn evaluate_with(
    executor: &dyn BatchExecutor,
    model: &Dgcnn,
    inputs: &[GraphInput],
    labels: &[usize],
    idx: &[usize],
) -> (f32, f64) {
    evaluate_inner(executor, None, model, inputs, labels, idx)
}

/// [`evaluate_with`] on the trainer's warm worker-lane tapes, so eval
/// forward passes draw from each lane's recycled workspace instead of
/// allocating a fresh tape per sample. Pooled buffers are zero-filled on
/// checkout, so the result is bitwise identical to [`evaluate_with`].
fn evaluate_on_tapes(
    executor: &dyn BatchExecutor,
    tapes: &[Mutex<Tape>],
    model: &Dgcnn,
    inputs: &[GraphInput],
    labels: &[usize],
    idx: &[usize],
) -> (f32, f64) {
    evaluate_inner(executor, Some(tapes), model, inputs, labels, idx)
}

/// Mean validation loss and accuracy on `idx`, running fused batch
/// inference over `batch_size`-sized chunks on the trainer's warm
/// lane-0 tape. Because batched prediction returns exactly the
/// per-sample probabilities and losses are summed in index order, the
/// result is bitwise identical to [`evaluate`].
fn evaluate_batched_on_tape(
    tape: &Mutex<Tape>,
    batch_size: usize,
    model: &Dgcnn,
    inputs: &[GraphInput],
    labels: &[usize],
    idx: &[usize],
) -> (f32, f64) {
    if idx.is_empty() {
        return (0.0, 0.0);
    }
    let _span =
        magic_obs::span_fields(magic_obs::stage::EVALUATE, &[("samples", idx.len() as f64)]);
    let mut tape = tape.lock().expect("unpoisoned tape");
    let mut loss_total = 0.0f32;
    let mut correct = 0usize;
    for chunk in batches(idx, batch_size) {
        let members: Vec<&GraphInput> = chunk.iter().map(|&i| &inputs[i]).collect();
        let graph_batch = GraphBatch::new(&members);
        let probs = model.predict_batch_with(&mut tape, &graph_batch);
        for (row, &i) in probs.iter().zip(chunk.iter()) {
            let p = row[labels[i]].clamp(1e-15, 1.0);
            loss_total += -p.ln();
            let arg = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(c, _)| c)
                .unwrap_or(0);
            correct += usize::from(arg == labels[i]);
        }
    }
    (loss_total / idx.len() as f32, correct as f64 / idx.len() as f64)
}

/// [`evaluate_batched_on_tape`] over a streamed cache: chunks are
/// decoded by the prefetch helper one chunk ahead of the fused forward
/// passes. Chunk composition, per-chunk batch assembly, and the
/// index-order loss accumulation all match the in-memory version, so
/// the result is bitwise identical to it.
fn evaluate_batched_streamed(
    tape: &Mutex<Tape>,
    batch_size: usize,
    model: &Dgcnn,
    corpus: &StreamedCorpus,
    labels: &[usize],
    idx: &[usize],
) -> (f32, f64) {
    if idx.is_empty() {
        return (0.0, 0.0);
    }
    let _span =
        magic_obs::span_fields(magic_obs::stage::EVALUATE, &[("samples", idx.len() as f64)]);
    let mut tape = tape.lock().expect("unpoisoned tape");
    let mut loss_total = 0.0f32;
    let mut correct = 0usize;
    with_prefetched_chunks(corpus, idx, batch_size, |chunk, fetched| {
        let members: Vec<&GraphInput> = fetched.iter().collect();
        let graph_batch = GraphBatch::new(&members);
        let probs = model.predict_batch_with(&mut tape, &graph_batch);
        for (row, &i) in probs.iter().zip(chunk.iter()) {
            let p = row[labels[i]].clamp(1e-15, 1.0);
            loss_total += -p.ln();
            let arg = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(c, _)| c)
                .unwrap_or(0);
            correct += usize::from(arg == labels[i]);
        }
    });
    (loss_total / idx.len() as f32, correct as f64 / idx.len() as f64)
}

/// [`evaluate_on_tapes`] over a streamed cache. Chunking only bounds
/// how many decoded records are alive at once: per-sample inference is
/// a pure function of the sample, and losses are still accumulated in
/// `idx` order across chunk boundaries, so the float-addition sequence
/// — and therefore the result — is bitwise identical to the unchunked
/// in-memory version.
fn evaluate_streamed_on_tapes(
    executor: &dyn BatchExecutor,
    tapes: &[Mutex<Tape>],
    chunk_size: usize,
    model: &Dgcnn,
    corpus: &StreamedCorpus,
    labels: &[usize],
    idx: &[usize],
) -> (f32, f64) {
    if idx.is_empty() {
        return (0.0, 0.0);
    }
    let _span =
        magic_obs::span_fields(magic_obs::stage::EVALUATE, &[("samples", idx.len() as f64)]);
    let mut loss_total = 0.0f32;
    let mut correct = 0usize;
    with_prefetched_chunks(corpus, idx, chunk_size, |chunk, fetched| {
        let per_sample: Vec<(f32, bool)> = run_indexed(executor, chunk.len(), |worker, j| {
            let i = chunk[j];
            let mut tape = tapes[worker].lock().expect("unpoisoned tape");
            let probs = model.predict_with(&mut tape, &fetched[j]);
            let p = probs[labels[i]].clamp(1e-15, 1.0);
            let arg = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(c, _)| c)
                .unwrap_or(0);
            (-p.ln(), arg == labels[i])
        });
        for &(loss, hit) in &per_sample {
            loss_total += loss;
            correct += usize::from(hit);
        }
    });
    (loss_total / idx.len() as f32, correct as f64 / idx.len() as f64)
}

fn evaluate_inner(
    executor: &dyn BatchExecutor,
    tapes: Option<&[Mutex<Tape>]>,
    model: &Dgcnn,
    inputs: &[GraphInput],
    labels: &[usize],
    idx: &[usize],
) -> (f32, f64) {
    if idx.is_empty() {
        return (0.0, 0.0);
    }
    let _span =
        magic_obs::span_fields(magic_obs::stage::EVALUATE, &[("samples", idx.len() as f64)]);
    let per_sample: Vec<(f32, bool)> = run_indexed(executor, idx.len(), |worker, j| {
        let i = idx[j];
        let probs = match tapes {
            Some(tapes) => {
                let mut tape = tapes[worker].lock().expect("unpoisoned tape");
                model.predict_with(&mut tape, &inputs[i])
            }
            None => model.predict(&inputs[i]),
        };
        let p = probs[labels[i]].clamp(1e-15, 1.0);
        let arg = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| c)
            .unwrap_or(0);
        (-p.ln(), arg == labels[i])
    });
    let mut loss_total = 0.0;
    let mut correct = 0usize;
    for &(loss, hit) in &per_sample {
        loss_total += loss;
        correct += usize::from(hit);
    }
    (loss_total / idx.len() as f32, correct as f64 / idx.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ThreadedExecutor;
    use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
    use magic_model::{DgcnnConfig, PoolingHead};
    use magic_tensor::Tensor;

    /// Two easily separable synthetic classes.
    fn toy_data() -> (Vec<GraphInput>, Vec<usize>) {
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let label = i % 2;
            let mut rng = Rng64::new(500 + i as u64);
            let n = 8;
            let mut g = DiGraph::new(n);
            for v in 0..n - 1 {
                g.add_edge(v, v + 1);
            }
            if label == 1 {
                // Class 1 is loop-shaped.
                g.add_edge(n - 1, 0);
            }
            let hi = if label == 1 { 6.0 } else { 1.5 };
            let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, hi, &mut rng);
            inputs.push(GraphInput::from_acfg(&Acfg::new(g, attrs)));
            labels.push(label);
        }
        (inputs, labels)
    }

    #[test]
    fn training_converges_on_toy_classes() {
        let (inputs, labels) = toy_data();
        let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(8));
        let mut model = Dgcnn::new(&config, 9);
        let trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 4,
            learning_rate: 0.02,
            weight_decay: 1e-4,
            seed: 1,
            grad_clip: 5.0,
            train_workers: 1,
            ..TrainConfig::default()
        });
        let train_idx: Vec<usize> = (0..16).collect();
        let val_idx: Vec<usize> = (16..20).collect();
        let outcome = trainer.train(&mut model, &inputs, &labels, &train_idx, &val_idx);
        assert_eq!(outcome.history.len(), 30);
        assert!(outcome.best_val_loss < outcome.history[0].val_loss);
        let (_, acc) = evaluate(&model, &inputs, &labels, &val_idx);
        assert!(acc >= 0.75, "val accuracy {acc}");
    }

    #[test]
    fn history_tracks_learning_rate_decay() {
        let (inputs, labels) = toy_data();
        let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(8));
        let mut model = Dgcnn::new(&config, 10);
        // Absurdly high LR forces the validation loss to bounce, which
        // must trigger the 10x decay.
        let trainer = Trainer::new(TrainConfig {
            epochs: 10,
            batch_size: 4,
            learning_rate: 1.0,
            weight_decay: 0.0,
            seed: 2,
            grad_clip: 0.0,
            train_workers: 1,
            ..TrainConfig::default()
        });
        let idx: Vec<usize> = (0..20).collect();
        let outcome = trainer.train(&mut model, &inputs, &labels, &idx, &idx);
        let first = outcome.history.first().unwrap().learning_rate;
        let last = outcome.history.last().unwrap().learning_rate;
        assert!(last <= first, "lr {first} -> {last}");
    }

    /// The core determinism guarantee of the data-parallel engine: the
    /// entire epoch history (losses, accuracies, learning rates) and the
    /// final weights are bitwise identical for 1, 2, and 4 workers.
    #[test]
    fn worker_count_does_not_change_training_bitwise() {
        use magic_autograd::first_bitwise_mismatch;
        let (inputs, labels) = toy_data();
        let train_idx: Vec<usize> = (0..16).collect();
        let val_idx: Vec<usize> = (16..20).collect();

        let run = |workers: usize| {
            let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(8));
            let mut model = Dgcnn::new(&config, 9);
            let trainer = Trainer::new(TrainConfig {
                epochs: 4,
                batch_size: 4,
                learning_rate: 0.02,
                seed: 3,
                train_workers: workers,
                ..TrainConfig::default()
            });
            let outcome = trainer.train(&mut model, &inputs, &labels, &train_idx, &val_idx);
            (outcome, model)
        };

        let (serial_outcome, serial_model) = run(1);
        for workers in [2, 4] {
            let (outcome, model) = run(workers);
            assert_eq!(
                outcome.history, serial_outcome.history,
                "history diverged with {workers} workers"
            );
            assert_eq!(outcome.best_val_loss, serial_outcome.best_val_loss);
            for (name, value) in model.store().iter() {
                let reference = serial_model.store();
                let id = reference.find(name).expect("same parameter set");
                assert_eq!(
                    first_bitwise_mismatch(value, reference.value(id)),
                    None,
                    "weights for {name} diverged with {workers} workers"
                );
            }
        }
    }

    /// The tentpole guarantee of the batched execution mode: fusing each
    /// mini-batch into one block-diagonal pass changes nothing but the
    /// wall-clock. The entire history, the best validation loss, and
    /// every final weight are bitwise identical to the per-sample path —
    /// and the batched path is itself run-to-run deterministic and
    /// independent of the intra-op thread count.
    #[test]
    fn batched_mode_matches_per_sample_training_bitwise() {
        use magic_autograd::first_bitwise_mismatch;
        let (inputs, labels) = toy_data();
        let train_idx: Vec<usize> = (0..16).collect();
        let val_idx: Vec<usize> = (16..20).collect();

        let run = |batched: bool, workers: usize| {
            let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(8));
            let mut model = Dgcnn::new(&config, 9);
            let trainer = Trainer::new(TrainConfig {
                epochs: 4,
                batch_size: 4,
                learning_rate: 0.02,
                seed: 3,
                train_workers: workers,
                batched,
                ..TrainConfig::default()
            });
            let outcome = trainer.train(&mut model, &inputs, &labels, &train_idx, &val_idx);
            (outcome, model)
        };
        let assert_same = |label: &str,
                           (outcome, model): &(TrainOutcome, Dgcnn),
                           (ref_outcome, ref_model): &(TrainOutcome, Dgcnn)| {
            assert_eq!(outcome.history, ref_outcome.history, "history diverged: {label}");
            assert_eq!(outcome.best_val_loss, ref_outcome.best_val_loss, "{label}");
            for (name, value) in model.store().iter() {
                let reference = ref_model.store();
                let id = reference.find(name).expect("same parameter set");
                assert_eq!(
                    first_bitwise_mismatch(value, reference.value(id)),
                    None,
                    "weights for {name} diverged: {label}"
                );
            }
        };

        let per_sample = run(false, 1);
        let batched = run(true, 1);
        assert_same("batched vs per-sample", &batched, &per_sample);
        // Run-to-run determinism of the batched path itself.
        assert_same("batched rerun", &run(true, 1), &batched);
        // The intra-op reduction tree is fixed, so threading the
        // microkernels must not move a single bit either.
        for threads in [2, 4] {
            magic_tensor::set_intra_op_threads(threads);
            let outcome = run(true, 1);
            magic_tensor::set_intra_op_threads(1);
            assert_same(&format!("batched with {threads} intra-op threads"), &outcome, &batched);
        }
    }

    #[test]
    fn best_epoch_points_at_minimum_val_loss() {
        let outcome = TrainOutcome {
            history: vec![
                EpochStats { epoch: 0, train_loss: 1.0, val_loss: 0.9, val_accuracy: 0.5, learning_rate: 0.1 },
                EpochStats { epoch: 1, train_loss: 0.8, val_loss: 0.4, val_accuracy: 0.7, learning_rate: 0.1 },
                EpochStats { epoch: 2, train_loss: 0.6, val_loss: 0.5, val_accuracy: 0.7, learning_rate: 0.1 },
            ],
            best_val_loss: 0.4,
        };
        assert_eq!(outcome.best_epoch(), 1);
    }

    #[test]
    fn best_epoch_breaks_ties_towards_the_first_minimum() {
        let stats = |epoch: usize, val_loss: f32| EpochStats {
            epoch,
            train_loss: 1.0,
            val_loss,
            val_accuracy: 0.5,
            learning_rate: 0.1,
        };
        let outcome = TrainOutcome {
            history: vec![stats(0, 0.9), stats(1, 0.4), stats(2, 0.4), stats(3, 0.4)],
            best_val_loss: 0.4,
        };
        assert_eq!(outcome.best_epoch(), 1);
    }

    #[test]
    fn parallel_evaluate_matches_serial() {
        let (inputs, labels) = toy_data();
        let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(8));
        let model = Dgcnn::new(&config, 4);
        let idx: Vec<usize> = (0..20).collect();
        let serial = evaluate(&model, &inputs, &labels, &idx);
        for workers in [2, 3, 8] {
            let parallel =
                evaluate_with(&ThreadedExecutor::new(workers), &model, &inputs, &labels, &idx);
            assert_eq!(parallel, serial, "evaluate diverged with {workers} workers");
        }
    }

    #[test]
    fn evaluate_on_empty_set_is_zero() {
        let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(8));
        let model = Dgcnn::new(&config, 0);
        assert_eq!(evaluate(&model, &[], &[], &[]), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn train_rejects_out_of_range_labels() {
        let (inputs, _) = toy_data();
        let labels = vec![9; inputs.len()];
        let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(8));
        let mut model = Dgcnn::new(&config, 0);
        Trainer::new(TrainConfig::default()).train(&mut model, &inputs, &labels, &[0], &[1]);
    }
}
