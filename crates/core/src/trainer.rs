//! Model training: Adam over the Eq. (5) loss with the Section V-B
//! learning-rate schedule.

use magic_autograd::Tape;
use magic_data::batches;
use magic_model::{Dgcnn, GraphInput};
use magic_nn::{Adam, Optimizer, ReduceLrOnPlateau};
use magic_tensor::Rng64;

/// Training hyperparameters not covered by the model architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training split (the paper uses 100).
    pub epochs: usize,
    /// Mini-batch size (Table II: 10 or 40).
    pub batch_size: usize,
    /// Initial Adam learning rate.
    pub learning_rate: f32,
    /// L2 weight regularization factor (Table II: 1e-4 or 5e-4).
    pub weight_decay: f32,
    /// Seed for shuffling and dropout.
    pub seed: u64,
    /// Cap on the global gradient norm (0 disables clipping).
    pub grad_clip: f32,
    /// Learning-rate decay divisor on plateau (paper: 10).
    pub lr_decay_factor: f32,
    /// Consecutive rising-validation-loss epochs before decaying
    /// (paper: 2). On very small validation splits the loss is noisy
    /// enough that the paper's setting fires spuriously; raise this when
    /// training on reduced-scale corpora.
    pub lr_patience: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            batch_size: 10,
            learning_rate: 1e-3,
            weight_decay: 1e-4,
            seed: 0,
            grad_clip: 5.0,
            lr_decay_factor: 10.0,
            lr_patience: 2,
        }
    }
}

/// Per-epoch bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index, from 0.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Mean validation loss (the model-selection criterion of V-B).
    pub val_loss: f32,
    /// Validation accuracy.
    pub val_accuracy: f64,
    /// Learning rate in effect during the epoch.
    pub learning_rate: f32,
}

/// The result of a training run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// One entry per epoch.
    pub history: Vec<EpochStats>,
    /// Minimum validation loss over all epochs (the paper's model score).
    pub best_val_loss: f32,
}

impl TrainOutcome {
    /// The epoch achieving the best validation loss.
    pub fn best_epoch(&self) -> usize {
        self.history
            .iter()
            .min_by(|a, b| a.val_loss.partial_cmp(&b.val_loss).unwrap_or(std::cmp::Ordering::Equal))
            .map(|e| e.epoch)
            .unwrap_or(0)
    }
}

/// Trains a [`Dgcnn`] on pre-extracted graph inputs.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics on a zero batch size or zero epochs.
    pub fn new(config: TrainConfig) -> Self {
        assert!(config.batch_size > 0, "batch size must be positive");
        assert!(config.epochs > 0, "need at least one epoch");
        Trainer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `model` on `train_idx` and validates on `val_idx` after
    /// every epoch, decaying the learning rate 10× after two consecutive
    /// epochs of rising validation loss (Section V-B).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or a label exceeds the model's
    /// class count.
    pub fn train(
        &self,
        model: &mut Dgcnn,
        inputs: &[GraphInput],
        labels: &[usize],
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> TrainOutcome {
        assert_eq!(inputs.len(), labels.len(), "one label per input");
        let num_classes = model.config().num_classes;
        for &l in labels {
            assert!(l < num_classes, "label {l} exceeds {num_classes} classes");
        }

        let mut rng = Rng64::new(self.config.seed);
        let mut optimizer = Adam::new(self.config.learning_rate, self.config.weight_decay);
        let mut scheduler =
            ReduceLrOnPlateau::new(self.config.lr_decay_factor, self.config.lr_patience, 1e-7);
        let mut history = Vec::with_capacity(self.config.epochs);
        let mut best_val_loss = f32::INFINITY;

        let mut order: Vec<usize> = train_idx.to_vec();
        for epoch in 0..self.config.epochs {
            rng.shuffle(&mut order);
            let mut train_loss_total = 0.0;
            for batch in batches(&order, self.config.batch_size) {
                model.store_mut().zero_grads();
                for &i in &batch {
                    let mut tape = Tape::new();
                    let binding = model.store().bind(&mut tape);
                    let lp = model.forward(&mut tape, &binding, &inputs[i], true, &mut rng);
                    let loss = tape.nll_loss(lp, vec![labels[i]]);
                    train_loss_total += tape.value(loss).item();
                    tape.backward(loss);
                    model.store_mut().accumulate_grads(&tape, &binding);
                }
                if self.config.grad_clip > 0.0 {
                    let clip = self.config.grad_clip * batch.len() as f32;
                    model.store_mut().clip_grad_norm(clip);
                }
                optimizer.step(model.store_mut(), batch.len());
            }
            let train_loss = train_loss_total / train_idx.len().max(1) as f32;

            let (val_loss, val_accuracy) = evaluate(model, inputs, labels, val_idx);
            let learning_rate = optimizer.learning_rate();
            scheduler.observe(val_loss, &mut optimizer);
            best_val_loss = best_val_loss.min(val_loss);
            history.push(EpochStats { epoch, train_loss, val_loss, val_accuracy, learning_rate });
        }
        TrainOutcome { history, best_val_loss }
    }
}

/// Mean validation loss and accuracy of `model` on `idx`.
pub fn evaluate(
    model: &Dgcnn,
    inputs: &[GraphInput],
    labels: &[usize],
    idx: &[usize],
) -> (f32, f64) {
    if idx.is_empty() {
        return (0.0, 0.0);
    }
    let mut loss_total = 0.0;
    let mut correct = 0usize;
    for &i in idx {
        let probs = model.predict(&inputs[i]);
        let p = probs[labels[i]].clamp(1e-15, 1.0);
        loss_total -= p.ln();
        let arg = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| c)
            .unwrap_or(0);
        if arg == labels[i] {
            correct += 1;
        }
    }
    (loss_total / idx.len() as f32, correct as f64 / idx.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
    use magic_model::{DgcnnConfig, PoolingHead};
    use magic_tensor::Tensor;

    /// Two easily separable synthetic classes.
    fn toy_data() -> (Vec<GraphInput>, Vec<usize>) {
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let label = i % 2;
            let mut rng = Rng64::new(500 + i as u64);
            let n = 8;
            let mut g = DiGraph::new(n);
            for v in 0..n - 1 {
                g.add_edge(v, v + 1);
            }
            if label == 1 {
                // Class 1 is loop-shaped.
                g.add_edge(n - 1, 0);
            }
            let hi = if label == 1 { 6.0 } else { 1.5 };
            let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, hi, &mut rng);
            inputs.push(GraphInput::from_acfg(&Acfg::new(g, attrs)));
            labels.push(label);
        }
        (inputs, labels)
    }

    #[test]
    fn training_converges_on_toy_classes() {
        let (inputs, labels) = toy_data();
        let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(8));
        let mut model = Dgcnn::new(&config, 9);
        let trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 4,
            learning_rate: 0.02,
            weight_decay: 1e-4,
            seed: 1,
            grad_clip: 5.0,
            ..TrainConfig::default()
        });
        let train_idx: Vec<usize> = (0..16).collect();
        let val_idx: Vec<usize> = (16..20).collect();
        let outcome = trainer.train(&mut model, &inputs, &labels, &train_idx, &val_idx);
        assert_eq!(outcome.history.len(), 30);
        assert!(outcome.best_val_loss < outcome.history[0].val_loss);
        let (_, acc) = evaluate(&model, &inputs, &labels, &val_idx);
        assert!(acc >= 0.75, "val accuracy {acc}");
    }

    #[test]
    fn history_tracks_learning_rate_decay() {
        let (inputs, labels) = toy_data();
        let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(8));
        let mut model = Dgcnn::new(&config, 10);
        // Absurdly high LR forces the validation loss to bounce, which
        // must trigger the 10x decay.
        let trainer = Trainer::new(TrainConfig {
            epochs: 10,
            batch_size: 4,
            learning_rate: 1.0,
            weight_decay: 0.0,
            seed: 2,
            grad_clip: 0.0,
            ..TrainConfig::default()
        });
        let idx: Vec<usize> = (0..20).collect();
        let outcome = trainer.train(&mut model, &inputs, &labels, &idx, &idx);
        let first = outcome.history.first().unwrap().learning_rate;
        let last = outcome.history.last().unwrap().learning_rate;
        assert!(last <= first, "lr {first} -> {last}");
    }

    #[test]
    fn best_epoch_points_at_minimum_val_loss() {
        let outcome = TrainOutcome {
            history: vec![
                EpochStats { epoch: 0, train_loss: 1.0, val_loss: 0.9, val_accuracy: 0.5, learning_rate: 0.1 },
                EpochStats { epoch: 1, train_loss: 0.8, val_loss: 0.4, val_accuracy: 0.7, learning_rate: 0.1 },
                EpochStats { epoch: 2, train_loss: 0.6, val_loss: 0.5, val_accuracy: 0.7, learning_rate: 0.1 },
            ],
            best_val_loss: 0.4,
        };
        assert_eq!(outcome.best_epoch(), 1);
    }

    #[test]
    fn evaluate_on_empty_set_is_zero() {
        let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(8));
        let model = Dgcnn::new(&config, 0);
        assert_eq!(evaluate(&model, &[], &[], &[]), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn train_rejects_out_of_range_labels() {
        let (inputs, _) = toy_data();
        let labels = vec![9; inputs.len()];
        let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(8));
        let mut model = Dgcnn::new(&config, 0);
        Trainer::new(TrainConfig::default()).train(&mut model, &inputs, &labels, &[0], &[1]);
    }
}
