#![warn(missing_docs)]

//! **MAGIC** — an end-to-end malware classification pipeline over control
//! flow graphs, reproducing *"Classifying Malware Represented as Control
//! Flow Graphs using Deep Graph Convolutional Neural Network"* (Yan, Yan
//! & Jin, DSN 2019).
//!
//! The crate ties the substrates together into the system of Fig. 1:
//!
//! 1. **CFG extraction** ([`pipeline`]): IDA-style `.asm` listings are
//!    parsed and converted to basic-block graphs with the paper's two-pass
//!    algorithm, then attributed with the Table I features (ACFGs).
//!    Extraction parallelizes across worker threads, as in Section IV-C.
//! 2. **DGCNN classification** ([`magic_model`]): graph convolutions
//!    embed the ACFG; a pooling head (SortPooling + Conv1D /
//!    WeightedVertices, or AdaptiveMaxPooling + Conv2D) reduces it to a
//!    fixed-size vector; a perceptron predicts the malware family.
//! 3. **Training & evaluation** ([`trainer`], [`cv`]): Adam over the mean
//!    NLL loss of Eq. (5), the reduce-on-plateau LR schedule of Section
//!    V-B, stratified five-fold cross-validation, and the exhaustive
//!    208-configuration hyperparameter grid of Table II ([`tuning`]).
//!
//! # Quickstart
//!
//! ```
//! use magic::pipeline::extract_acfg;
//!
//! let listing = "\
//! .text:00401000    cmp     eax, 1
//! .text:00401003    jz      short loc_401008
//! .text:00401005    add     eax, 2
//! .text:00401008 loc_401008:
//! .text:00401008    retn
//! ";
//! let acfg = extract_acfg(listing)?;
//! assert_eq!(acfg.vertex_count(), 3);
//! # Ok::<(), magic::pipeline::PipelineError>(())
//! ```

pub mod checkpoint;
pub mod corpus_cache;
pub mod cv;
pub mod executor;
pub mod pipeline;
pub mod trainer;
pub mod tuning;

pub use corpus_cache::{
    build as build_cache, load as load_cache, open_streaming, BuildOutcome, CacheSpec,
    CorpusKind, LoadedCorpus, DEFAULT_SHARDS,
};
pub use cv::{cross_validate, CvOutcome};
pub use executor::{
    executor_for, resolve_workers, workers_per_concurrent_run, BatchExecutor, SerialExecutor,
    ThreadedExecutor,
};
pub use pipeline::{extract_acfg, extract_acfgs_parallel, MagicPipeline, PipelineError};
pub use trainer::{evaluate, evaluate_with, EpochStats, TrainConfig, Trainer, TrainOutcome};
pub use tuning::{GridSearch, HeadKind, HyperParams, SearchOutcome};
