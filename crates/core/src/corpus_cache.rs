//! Sharded binary ACFG corpus cache: parallel build, no-op reruns, and
//! RAM/streaming load paths.
//!
//! The synthetic corpora are deterministic functions of `(generator,
//! seed, scale)`, but regenerating them — listing synthesis plus the
//! parse → CFG → ACFG front half — dominates short experiment loops.
//! This module materializes a corpus once into `magic-acfg/1` shards
//! (see [`magic_data::cache`]) keyed by the configuration fingerprint,
//! so every later `train`/`profile`/`bench` run starts from decoded
//! graphs instead of re-running extraction.
//!
//! Determinism contract: shards store raw (unscaled) Table I attribute
//! counts in sample order, exactly as `generate()` would have produced
//! them. [`build`] renders samples in parallel from the generator's
//! serial [`plan`](magic_synth::MskcfgGenerator::plan), so the cached
//! corpus is bitwise identical to the in-memory corpus regardless of
//! worker count, and a rerun with a matching fingerprint is a no-op.

use crate::executor::{executor_for, run_indexed};
use crate::pipeline::extract_acfg;
use magic_data::{
    cache_fingerprint, write_shard, CacheError, CacheManifest, ShardMeta, ShardRecord,
    ShardStream, StreamedCorpus,
};
use magic_graph::{Acfg, ReduceStrategy};
use magic_model::GraphInput;
use magic_synth::{MskcfgGenerator, YancfgGenerator, MSKCFG_FAMILIES, YANCFG_FAMILIES};
use std::fmt;
use std::path::Path;

/// Default shard count for `magic cache build`.
pub const DEFAULT_SHARDS: usize = 4;

/// Which synthetic corpus a cache holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusKind {
    /// MSKCFG: synthetic IDA-style listings run through real extraction.
    Mskcfg,
    /// YANCFG: ACFGs generated directly from family profiles.
    Yancfg,
}

impl CorpusKind {
    /// Canonical generator name as used on the CLI and in manifests.
    pub fn name(self) -> &'static str {
        match self {
            CorpusKind::Mskcfg => "mskcfg",
            CorpusKind::Yancfg => "yancfg",
        }
    }

    /// Family names of the corpus, indexable by record label.
    pub fn class_names(self) -> Vec<String> {
        match self {
            CorpusKind::Mskcfg => MSKCFG_FAMILIES.iter().map(|s| s.to_string()).collect(),
            CorpusKind::Yancfg => YANCFG_FAMILIES.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Parses a CLI corpus name.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for unknown names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "mskcfg" => Ok(CorpusKind::Mskcfg),
            "yancfg" => Ok(CorpusKind::Yancfg),
            other => Err(format!("unknown corpus {other:?} (mskcfg|yancfg)")),
        }
    }
}

impl fmt::Display for CorpusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything that identifies a cached corpus: the fingerprint inputs
/// plus the shard layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSpec {
    /// Which generator to run.
    pub corpus: CorpusKind,
    /// Generator seed.
    pub seed: u64,
    /// Generator scale (fraction of the paper's per-family counts).
    pub scale: f64,
    /// Graph-reduction strategy applied to every sample before it is
    /// written into the shards.
    pub reduce: ReduceStrategy,
    /// Number of shard files to split the corpus across.
    pub shards: usize,
}

impl CacheSpec {
    /// Configuration fingerprint (shard count excluded — shards chunk
    /// the same sample sequence contiguously, so layout never changes
    /// sample identity or order; the reduce strategy *is* included,
    /// because shards store already-reduced graphs).
    pub fn fingerprint(&self) -> u64 {
        cache_fingerprint(self.corpus.name(), self.seed, self.scale, &self.reduce.name())
    }
}

/// Result of [`build`]: the manifest plus whether work actually ran.
#[derive(Debug)]
pub struct BuildOutcome {
    /// Manifest describing the cache directory.
    pub manifest: CacheManifest,
    /// `false` when an up-to-date cache was found and left untouched.
    pub rebuilt: bool,
    /// Total shard bytes on disk.
    pub bytes: u64,
}

/// A corpus fully decoded into RAM, ready for the in-memory trainer.
#[derive(Debug)]
pub struct LoadedCorpus {
    /// Raw-attribute ACFGs in canonical sample order.
    pub acfgs: Vec<Acfg>,
    /// Model-ready inputs (log-scaled attributes, CSR adjacency).
    pub inputs: Vec<GraphInput>,
    /// Class labels, parallel to `inputs`.
    pub labels: Vec<usize>,
    /// Family names, indexable by label.
    pub class_names: Vec<String>,
}

/// Renders every sample of `spec`'s corpus in parallel (including
/// `spec.reduce` reduction — shards store reduced graphs) and returns
/// the records in canonical (`generate()`) order.
fn render_records(spec: &CacheSpec, workers: usize) -> Result<Vec<ShardRecord>, CacheError> {
    let executor = executor_for(workers);
    let reduce = spec.reduce;
    match spec.corpus {
        CorpusKind::Mskcfg => {
            let mut generator = MskcfgGenerator::new(spec.seed, spec.scale);
            let plan = generator.plan();
            let profiles = generator.profiles();
            let rendered = run_indexed(executor.as_ref(), plan.len(), |_worker, i| {
                let (label, mut rng) = plan[i].clone();
                let sample = MskcfgGenerator::render(profiles, label, &mut rng);
                extract_acfg(&sample.listing)
                    .map(|acfg| ShardRecord { label, acfg: reduce.apply(&acfg) })
                    .map_err(|e| format!("sample {i}: {e}"))
            });
            rendered
                .into_iter()
                .collect::<Result<Vec<_>, _>>()
                .map_err(CacheError::Corrupt)
        }
        CorpusKind::Yancfg => {
            let mut generator = YancfgGenerator::new(spec.seed, spec.scale);
            let plan = generator.plan();
            let profiles = generator.profiles();
            Ok(run_indexed(executor.as_ref(), plan.len(), |_worker, i| {
                let (label, mut rng) = plan[i].clone();
                let sample = YancfgGenerator::render(profiles, label, &mut rng);
                ShardRecord { label, acfg: reduce.apply(&sample.acfg) }
            }))
        }
    }
}

/// Splits `n` samples into `shards` contiguous chunks whose sizes differ
/// by at most one (earlier shards take the remainder).
fn shard_sizes(n: usize, shards: usize) -> Vec<usize> {
    let shards = shards.clamp(1, n.max(1));
    let base = n / shards;
    let extra = n % shards;
    (0..shards).map(|s| base + usize::from(s < extra)).collect()
}

/// Builds (or verifies) the cache for `spec` under `dir`.
///
/// When `dir` already holds a manifest with a matching fingerprint and
/// `force` is false, nothing is written and `rebuilt` is `false`.
/// Otherwise the corpus is rendered across `workers` threads (0 = all
/// cores), chunked contiguously into `spec.shards` files, and written
/// with a fresh manifest.
///
/// # Errors
///
/// Returns [`CacheError`] on I/O failure or if a generated listing
/// fails extraction (which would indicate a generator bug).
pub fn build(dir: &Path, spec: &CacheSpec, workers: usize, force: bool) -> Result<BuildOutcome, CacheError> {
    let fingerprint = spec.fingerprint();
    if !force {
        if let Ok(manifest) = CacheManifest::load(dir) {
            if manifest.fingerprint == fingerprint {
                let bytes = manifest.shards.iter().map(|s| s.bytes).sum();
                return Ok(BuildOutcome { manifest, rebuilt: false, bytes });
            }
        }
    }
    std::fs::create_dir_all(dir)?;

    let records = render_records(spec, workers)?;
    let sizes = shard_sizes(records.len(), spec.shards);
    let _span = magic_obs::span_fields(
        magic_obs::stage::CACHE_BUILD,
        &[("samples", records.len() as f64), ("shards", sizes.len() as f64)],
    );

    let mut shards = Vec::with_capacity(sizes.len());
    let mut total_bytes = 0u64;
    let mut offset = 0usize;
    for (s, &size) in sizes.iter().enumerate() {
        let chunk = &records[offset..offset + size];
        offset += size;
        let file = format!("shard-{s:04}.acfg");
        let bytes = write_shard(&dir.join(&file), fingerprint, s, sizes.len(), chunk)?;
        total_bytes += bytes;
        shards.push(ShardMeta { file, records: chunk.len(), bytes });
    }

    let manifest = CacheManifest {
        fingerprint,
        corpus: spec.corpus.name().to_string(),
        seed: spec.seed,
        scale: spec.scale,
        reduce: spec.reduce.name(),
        samples: records.len(),
        class_names: spec.corpus.class_names(),
        shards,
    };
    manifest.save(dir)?;
    Ok(BuildOutcome { manifest, rebuilt: true, bytes: total_bytes })
}

/// Loads a cache directory fully into RAM, building [`GraphInput`]s in
/// parallel per shard while the next shard decodes in the background.
///
/// Pass `expected_fingerprint` to reject caches built for a different
/// configuration; `None` accepts whatever the manifest describes.
///
/// # Errors
///
/// Returns [`CacheError`] for a missing, damaged, or mismatched cache.
pub fn load(
    dir: &Path,
    expected_fingerprint: Option<u64>,
    workers: usize,
) -> Result<LoadedCorpus, CacheError> {
    let (manifest, stream) = ShardStream::open(dir, expected_fingerprint)?;
    let executor = executor_for(workers);
    let mut acfgs = Vec::with_capacity(manifest.samples);
    let mut inputs = Vec::with_capacity(manifest.samples);
    let mut labels = Vec::with_capacity(manifest.samples);
    for shard in stream {
        let shard = shard?;
        // The CSR/feature build is the compute-heavy part of loading;
        // run it across workers while the prefetch thread decodes the
        // next shard.
        let shard_inputs = run_indexed(executor.as_ref(), shard.records.len(), |_worker, i| {
            shard.records[i].to_graph_input()
        });
        for (record, input) in shard.records.into_iter().zip(shard_inputs) {
            labels.push(record.label);
            acfgs.push(record.acfg);
            inputs.push(input);
        }
    }
    Ok(LoadedCorpus { acfgs, inputs, labels, class_names: manifest.class_names })
}

/// Opens a cache for shard-at-a-time streaming (random access by global
/// sample index, shards kept on disk). Thin wrapper over
/// [`StreamedCorpus::open`] so callers only need this module.
///
/// # Errors
///
/// Returns [`CacheError`] for a missing, damaged, or mismatched cache.
pub fn open_streaming(
    dir: &Path,
    expected_fingerprint: Option<u64>,
) -> Result<StreamedCorpus, CacheError> {
    StreamedCorpus::open(dir, expected_fingerprint)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("magic-corpus-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec(corpus: CorpusKind) -> CacheSpec {
        CacheSpec { corpus, seed: 7, scale: 0.002, reduce: ReduceStrategy::None, shards: 3 }
    }

    #[test]
    fn shard_sizes_are_contiguous_and_balanced() {
        assert_eq!(shard_sizes(10, 3), vec![4, 3, 3]);
        assert_eq!(shard_sizes(3, 4), vec![1, 1, 1]);
        assert_eq!(shard_sizes(0, 4), vec![0]);
        assert_eq!(shard_sizes(8, 1), vec![8]);
    }

    #[test]
    fn build_matches_generate_and_rerun_is_noop() {
        let dir = tmp_dir("noop");
        let spec = tiny_spec(CorpusKind::Yancfg);
        let first = build(&dir, &spec, 3, false).unwrap();
        assert!(first.rebuilt);
        assert_eq!(first.manifest.samples, first.manifest.shards.iter().map(|s| s.records).sum());

        // Rerun with a matching fingerprint touches nothing.
        let again = build(&dir, &spec, 1, false).unwrap();
        assert!(!again.rebuilt);
        assert_eq!(again.manifest.fingerprint, first.manifest.fingerprint);

        // The cached corpus is bitwise what generate() produces.
        let loaded = load(&dir, Some(spec.fingerprint()), 2).unwrap();
        let samples = YancfgGenerator::new(spec.seed, spec.scale).generate();
        assert_eq!(loaded.labels.len(), samples.len());
        for (cached, fresh) in loaded.acfgs.iter().zip(&samples) {
            assert_eq!(cached.vertex_count(), fresh.acfg.vertex_count());
            assert!(cached.attributes().approx_eq(fresh.acfg.attributes(), 0.0));
        }
        let labels: Vec<usize> = samples.iter().map(|s| s.label).collect();
        assert_eq!(loaded.labels, labels);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mskcfg_cache_round_trips_through_extraction() {
        let dir = tmp_dir("msk");
        let spec = CacheSpec {
            corpus: CorpusKind::Mskcfg,
            seed: 11,
            scale: 0.001,
            reduce: ReduceStrategy::None,
            shards: 2,
        };
        let outcome = build(&dir, &spec, 2, false).unwrap();
        assert!(outcome.rebuilt);
        let loaded = load(&dir, Some(spec.fingerprint()), 2).unwrap();
        assert_eq!(loaded.inputs.len(), outcome.manifest.samples);
        assert_eq!(loaded.class_names.len(), MSKCFG_FAMILIES.len());

        // Streaming access agrees with the RAM load, input by input.
        let streamed = open_streaming(&dir, Some(spec.fingerprint())).unwrap();
        assert_eq!(streamed.len(), loaded.inputs.len());
        let idx: Vec<usize> = (0..streamed.len()).collect();
        let fetched = streamed.fetch(&idx).unwrap();
        for (a, b) in fetched.iter().zip(&loaded.inputs) {
            assert_eq!(a.vertex_count(), b.vertex_count());
            assert_eq!(a.attributes().as_slice(), b.attributes().as_slice());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reduced_cache_stores_reduced_graphs_and_gates_by_strategy() {
        let dir = tmp_dir("reduced");
        let spec = CacheSpec { reduce: ReduceStrategy::Chain, ..tiny_spec(CorpusKind::Yancfg) };
        let outcome = build(&dir, &spec, 2, false).unwrap();
        assert!(outcome.rebuilt);
        assert_eq!(outcome.manifest.reduce, "chain");

        // Shards hold graphs that chain-collapse already fixed.
        let loaded = load(&dir, Some(spec.fingerprint()), 2).unwrap();
        let unreduced = YancfgGenerator::new(spec.seed, spec.scale).generate();
        let mut shrank = false;
        for (cached, fresh) in loaded.acfgs.iter().zip(&unreduced) {
            assert_eq!(cached, &ReduceStrategy::Chain.apply(&fresh.acfg));
            shrank |= cached.vertex_count() < fresh.acfg.vertex_count();
        }
        assert!(shrank, "chain collapse must shrink at least one yancfg graph");

        // A cache built with one strategy never silently serves another.
        let other = CacheSpec { reduce: ReduceStrategy::None, ..spec };
        assert_ne!(spec.fingerprint(), other.fingerprint());
        let err = load(&dir, Some(other.fingerprint()), 1).unwrap_err();
        assert!(matches!(err, CacheError::FingerprintMismatch { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn force_rebuild_rewrites_and_fingerprint_gates_load() {
        let dir = tmp_dir("force");
        let spec = tiny_spec(CorpusKind::Yancfg);
        build(&dir, &spec, 1, false).unwrap();
        let forced = build(&dir, &spec, 1, true).unwrap();
        assert!(forced.rebuilt);

        let other = CacheSpec { seed: spec.seed + 1, ..spec };
        let err = load(&dir, Some(other.fingerprint()), 1).unwrap_err();
        assert!(matches!(err, CacheError::FingerprintMismatch { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
