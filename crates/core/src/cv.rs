//! Stratified K-fold cross-validation of a DGCNN configuration
//! (Section V-B).

use crate::trainer::{Trainer, TrainConfig};
use magic_data::stratified_kfold;
use magic_metrics::{mean_log_loss, ConfusionMatrix, ScoreReport};
use magic_model::{Dgcnn, DgcnnConfig, GraphInput};

/// The aggregate of a cross-validation run: per-fold validation losses,
/// the merged confusion matrix over all held-out predictions, and the
/// mean log loss — everything Tables III–V report.
#[derive(Debug, Clone)]
pub struct CvOutcome {
    /// Best (minimum-over-epochs) validation loss of each fold.
    pub fold_val_losses: Vec<f32>,
    /// Confusion matrix merged across the five validation splits.
    pub confusion: ConfusionMatrix,
    /// Mean negative log-likelihood over all held-out predictions.
    pub log_loss: f64,
    /// Mean of `fold_val_losses` — the paper's model-selection score.
    pub mean_val_loss: f32,
}

impl CvOutcome {
    /// Formats the outcome as a per-family score table.
    pub fn report(&self, class_names: &[String]) -> ScoreReport {
        ScoreReport::from_confusion(&self.confusion, class_names).with_log_loss(self.log_loss)
    }
}

/// Runs K-fold cross-validation: for each fold, trains a freshly
/// initialized model ("a brand new model initialized randomly",
/// Section V-B) on 80% of the data and evaluates on the rest, so "the
/// training process never sees the testing samples".
///
/// Folds are independent, so they train on parallel threads (the paper
/// likewise spreads its grid over four GPUs); results are deterministic
/// regardless of scheduling because each fold derives its own seed and
/// in-fold training is bitwise worker-count independent.
///
/// When [`TrainConfig::train_workers`] is `0` ("auto"), the machine's
/// parallelism is divided across the fold threads so the two layers of
/// fan-out — folds here, mini-batch samples inside
/// [`Trainer::train`] — do not oversubscribe the cores. An explicit
/// worker count is honored verbatim, *per fold*.
///
/// # Panics
///
/// Panics if inputs and labels disagree or `folds < 2`.
pub fn cross_validate(
    model_config: &DgcnnConfig,
    train_config: &TrainConfig,
    inputs: &[GraphInput],
    labels: &[usize],
    folds: usize,
) -> CvOutcome {
    assert_eq!(inputs.len(), labels.len(), "one label per input");
    let mut fold_config = train_config.clone();
    fold_config.train_workers =
        crate::executor::workers_per_concurrent_run(fold_config.train_workers, folds);
    let trainer = Trainer::new(fold_config);
    let splits = stratified_kfold(labels, folds, train_config.seed);

    // One worker per fold; each returns (best val loss, per-sample
    // predictions for its validation split).
    type FoldResult = (f32, Vec<(usize, Vec<f64>)>);
    let fold_results: Vec<FoldResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = splits
            .iter()
            .enumerate()
            .map(|(fold, split)| {
                let trainer = &trainer;
                scope.spawn(move || {
                    let mut model = Dgcnn::new(
                        model_config,
                        train_config.seed ^ (fold as u64).wrapping_mul(0x9E37),
                    );
                    let outcome =
                        trainer.train(&mut model, inputs, labels, &split.train, &split.validation);
                    let predictions = split
                        .validation
                        .iter()
                        .map(|&i| {
                            let p: Vec<f64> = model
                                .predict(&inputs[i])
                                .iter()
                                .map(|&x| x as f64)
                                .collect();
                            (i, p)
                        })
                        .collect();
                    (outcome.best_val_loss, predictions)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("fold worker panicked")).collect()
    });

    let mut confusion = ConfusionMatrix::new(model_config.num_classes);
    let mut fold_val_losses = Vec::with_capacity(folds);
    let mut probs: Vec<Vec<f64>> = Vec::with_capacity(inputs.len());
    let mut targets: Vec<usize> = Vec::with_capacity(inputs.len());
    for (best_val_loss, predictions) in fold_results {
        fold_val_losses.push(best_val_loss);
        for (i, p) in predictions {
            let predicted = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(c, _)| c)
                .unwrap_or(0);
            confusion.record(labels[i], predicted);
            probs.push(p);
            targets.push(labels[i]);
        }
    }
    let log_loss = mean_log_loss(&probs, &targets);
    let mean_val_loss = fold_val_losses.iter().sum::<f32>() / folds as f32;
    CvOutcome { fold_val_losses, confusion, log_loss, mean_val_loss }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
    use magic_model::PoolingHead;
    use magic_tensor::{Rng64, Tensor};

    fn toy_corpus() -> (Vec<GraphInput>, Vec<usize>) {
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..24 {
            let label = i % 2;
            let mut rng = Rng64::new(900 + i as u64);
            let n = 6;
            let mut g = DiGraph::new(n);
            for v in 0..n - 1 {
                g.add_edge(v, v + 1);
            }
            let hi = if label == 1 { 6.0 } else { 1.0 };
            let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, hi, &mut rng);
            inputs.push(GraphInput::from_acfg(&Acfg::new(g, attrs)));
            labels.push(label);
        }
        (inputs, labels)
    }

    #[test]
    fn cv_covers_every_sample_once() {
        let (inputs, labels) = toy_corpus();
        let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(6));
        let tc = TrainConfig { epochs: 6, batch_size: 4, learning_rate: 0.01, ..TrainConfig::default() };
        let outcome = cross_validate(&config, &tc, &inputs, &labels, 3);
        assert_eq!(outcome.fold_val_losses.len(), 3);
        assert_eq!(outcome.confusion.total(), inputs.len());
        assert!(outcome.log_loss.is_finite());
        // A separable toy problem should score well above chance.
        assert!(outcome.confusion.accuracy() > 0.6, "{}", outcome.confusion.accuracy());
        let report = outcome.report(&["A".to_string(), "B".to_string()]);
        assert_eq!(report.classes.len(), 2);
        assert!(report.log_loss.is_some());
    }
}
