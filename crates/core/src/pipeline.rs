//! The MAGIC front half: listing → CFG → ACFG, plus the assembled
//! classify-one-binary pipeline.

use crate::executor::{run_indexed, SerialExecutor, ThreadedExecutor};
use magic_asm::{parse_listing, CfgBuilder, ParseError};
use magic_graph::{Acfg, ReduceStrategy};
use magic_model::{Dgcnn, GraphInput};
use std::error::Error;
use std::fmt;

/// Error from ACFG extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The listing could not be parsed.
    Parse(ParseError),
    /// The listing parsed but produced no basic blocks.
    EmptyProgram,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse failure: {e}"),
            PipelineError::EmptyProgram => f.write_str("listing contains no instructions"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Parse(e) => Some(e),
            PipelineError::EmptyProgram => None,
        }
    }
}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

/// Extracts an attributed CFG from one IDA-style listing (the first half
/// of Fig. 1's workflow).
///
/// # Errors
///
/// Returns [`PipelineError`] if the listing cannot be parsed or holds no
/// instructions.
pub fn extract_acfg(listing: &str) -> Result<Acfg, PipelineError> {
    let _span = magic_obs::span(magic_obs::stage::EXTRACT_ACFG);
    let program = parse_listing(listing)?;
    if program.is_empty() {
        return Err(PipelineError::EmptyProgram);
    }
    let cfg = CfgBuilder::new(&program).build();
    Ok(Acfg::from_cfg(&cfg))
}

/// Extracts ACFGs for many listings across `workers` threads — MAGIC
/// "can generate multiple ACFGs in parallel" (Section IV-C). Order is
/// preserved; failures are reported per listing.
pub fn extract_acfgs_parallel(
    listings: &[String],
    workers: usize,
) -> Vec<Result<Acfg, PipelineError>> {
    let workers = workers.max(1).min(listings.len().max(1));
    let job = |_worker: usize, i: usize| extract_acfg(&listings[i]);
    if workers <= 1 {
        run_indexed(&SerialExecutor, listings.len(), job)
    } else {
        run_indexed(&ThreadedExecutor::new(workers), listings.len(), job)
    }
}

/// The assembled end-to-end system: a trained DGCNN plus family names.
///
/// In the paper's deployment story (Section VII), this is the object that
/// would live on the cloud: it takes raw disassembly and returns a family
/// verdict.
#[derive(Debug)]
pub struct MagicPipeline {
    model: Dgcnn,
    family_names: Vec<String>,
    reduce: ReduceStrategy,
}

impl MagicPipeline {
    /// Wraps a trained model with its family vocabulary (no graph
    /// reduction — equivalent to [`with_reduce`](Self::with_reduce) and
    /// [`ReduceStrategy::None`]).
    ///
    /// # Panics
    ///
    /// Panics if the name count differs from the model's class count.
    pub fn new(model: Dgcnn, family_names: Vec<String>) -> Self {
        Self::with_reduce(model, family_names, ReduceStrategy::None)
    }

    /// Wraps a trained model with its family vocabulary and the graph
    /// reduction the model was trained with. Every incoming graph —
    /// extracted or pre-extracted — passes through the same strategy
    /// before inference, so serving matches training.
    ///
    /// # Panics
    ///
    /// Panics if the name count differs from the model's class count.
    pub fn with_reduce(
        model: Dgcnn,
        family_names: Vec<String>,
        reduce: ReduceStrategy,
    ) -> Self {
        assert_eq!(
            model.config().num_classes,
            family_names.len(),
            "one family name per class required"
        );
        MagicPipeline { model, family_names, reduce }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Dgcnn {
        &self.model
    }

    /// The family vocabulary.
    pub fn family_names(&self) -> &[String] {
        &self.family_names
    }

    /// The reduction strategy applied to every graph before inference.
    pub fn reduce(&self) -> ReduceStrategy {
        self.reduce
    }

    /// Builds the model input for an ACFG, applying this pipeline's
    /// reduction strategy first. Idempotence of the strategies makes
    /// this safe for graphs that were already reduced upstream (e.g. a
    /// client sending pre-reduced ACFGs).
    pub fn input_for(&self, acfg: &Acfg) -> GraphInput {
        if self.reduce.is_none() {
            GraphInput::from_acfg(acfg)
        } else {
            GraphInput::from_acfg(&self.reduce.apply(acfg))
        }
    }

    /// Classifies one listing, returning `(family name, probability)`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] if extraction fails.
    pub fn classify_listing(&self, listing: &str) -> Result<(&str, f32), PipelineError> {
        let _span = magic_obs::span(magic_obs::stage::PREDICT);
        let acfg = extract_acfg(listing)?;
        Ok(self.classify_acfg(&acfg))
    }

    /// Classifies a pre-extracted ACFG.
    pub fn classify_acfg(&self, acfg: &Acfg) -> (&str, f32) {
        let probs = self.model.predict(&self.input_for(acfg));
        let (best, p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("non-empty probability vector");
        (&self.family_names[best], *p)
    }

    /// Full probability distribution over families for an ACFG.
    pub fn family_distribution(&self, acfg: &Acfg) -> Vec<(&str, f32)> {
        let probs = self.model.predict(&self.input_for(acfg));
        self.family_names
            .iter()
            .map(String::as_str)
            .zip(probs)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_model::{DgcnnConfig, PoolingHead};

    const LISTING: &str = "\
.text:00401000    cmp     eax, 1
.text:00401003    jz      short loc_401008
.text:00401005    add     eax, 2
.text:00401008 loc_401008:
.text:00401008    retn
";

    #[test]
    fn extract_acfg_builds_three_blocks() {
        let acfg = extract_acfg(LISTING).unwrap();
        assert_eq!(acfg.vertex_count(), 3);
        assert_eq!(acfg.edge_count(), 3);
    }

    #[test]
    fn empty_listing_is_rejected() {
        assert_eq!(extract_acfg("; nothing\n"), Err(PipelineError::EmptyProgram));
    }

    #[test]
    fn parse_error_propagates_with_source() {
        let err = extract_acfg(".text:  mov eax, 1").unwrap_err();
        assert!(matches!(err, PipelineError::Parse(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn parallel_extraction_preserves_order_and_results() {
        let listings: Vec<String> = (0..20)
            .map(|i| {
                format!(
                    ".text:00401000    mov eax, {i}\n.text:00401005    retn\n"
                )
            })
            .collect();
        let serial: Vec<_> = listings.iter().map(|l| extract_acfg(l)).collect();
        let parallel = extract_acfgs_parallel(&listings, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.as_ref().unwrap().vertex_count(), p.as_ref().unwrap().vertex_count());
        }
    }

    #[test]
    fn parallel_extraction_reports_failures_in_place() {
        let listings = vec![
            ".text:00401000  retn\n".to_string(),
            String::new(),
            ".text:00401000  nop\n".to_string(),
        ];
        let results = extract_acfgs_parallel(&listings, 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn pipeline_classifies_listing_to_a_named_family() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(8));
        let model = Dgcnn::new(&config, 4);
        let pipeline = MagicPipeline::new(
            model,
            vec!["Ramnit".into(), "Vundo".into(), "Gatak".into()],
        );
        let (family, p) = pipeline.classify_listing(LISTING).unwrap();
        assert!(["Ramnit", "Vundo", "Gatak"].contains(&family));
        assert!(p > 0.0 && p <= 1.0);
        let dist = pipeline.family_distribution(&extract_acfg(LISTING).unwrap());
        let total: f32 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-3);
    }

    #[test]
    fn reduced_pipeline_matches_manual_reduction() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(8));
        let model = Dgcnn::new(&config, 4);
        let pipeline = MagicPipeline::with_reduce(
            model,
            vec!["Ramnit".into(), "Vundo".into(), "Gatak".into()],
            ReduceStrategy::Chain,
        );
        let acfg = extract_acfg(LISTING).unwrap();
        let reduced = ReduceStrategy::Chain.apply(&acfg);
        // The pipeline reduces internally; feeding a pre-reduced graph
        // is bitwise identical (idempotence).
        let a = pipeline.family_distribution(&acfg);
        let b = pipeline.family_distribution(&reduced);
        for ((fa, pa), (fb, pb)) in a.iter().zip(&b) {
            assert_eq!(fa, fb);
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "one family name per class")]
    fn pipeline_rejects_mismatched_names() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(8));
        MagicPipeline::new(Dgcnn::new(&config, 0), vec!["OnlyOne".into()]);
    }
}
