use magic::cv::cross_validate;
use magic::trainer::TrainConfig;
use magic::tuning::{HeadKind, HyperParams};
use magic::pipeline::extract_acfgs_parallel;
use magic_baselines::{Classifier, FeatureVector, RandomForest};
use magic_data::stratified_kfold;
use magic_model::GraphInput;
use magic_synth::MskcfgGenerator;

fn main() {
    let mut gen = MskcfgGenerator::new(7, 0.01);
    let samples = gen.generate();
    let listings: Vec<String> = samples.iter().map(|s| s.listing.clone()).collect();
    let acfgs: Vec<_> = extract_acfgs_parallel(&listings, 1).into_iter().map(|r| r.unwrap()).collect();
    let inputs: Vec<GraphInput> = acfgs.iter().map(GraphInput::from_acfg).collect();
    let labels: Vec<usize> = samples.iter().map(|s| s.label).collect();
    let sizes: Vec<usize> = inputs.iter().map(|i| i.vertex_count()).collect();

    // RF probe for separability.
    let feats: Vec<Vec<f64>> = acfgs.iter().map(|a| FeatureVector::Rich.extract(a)).collect();
    let splits = stratified_kfold(&labels, 5, 7);
    let mut correct = 0;
    for split in &splits {
        let tx: Vec<Vec<f64>> = split.train.iter().map(|&i| feats[i].clone()).collect();
        let ty: Vec<usize> = split.train.iter().map(|&i| labels[i]).collect();
        let mut m = RandomForest::new(40, 10, 3);
        m.fit(&tx, &ty, 9);
        correct += split.validation.iter().filter(|&&i| m.predict(&feats[i]) == labels[i]).count();
    }
    println!("RF: {:.3}", correct as f64 / labels.len() as f64);

    // DGCNN with lr 5e-3, patience 5, 30 epochs.
    let mut params = HyperParams::paper_default();
    params.head = HeadKind::Adaptive;
    params.pooling_ratio = 0.64;
    params.conv_sizes = vec![128, 64, 32, 32];
    let config = params.to_model_config(9, &sizes);
    let tc = TrainConfig { epochs: 30, batch_size: 10, learning_rate: 5e-3, weight_decay: 1e-4, seed: 5, lr_patience: 5, ..TrainConfig::default() };
    let out = cross_validate(&config, &tc, &inputs, &labels, 5);
    println!("DGCNN: acc {:.3} logloss {:.3}", out.confusion.accuracy(), out.log_loss);
}
