//! Trainable parameter storage and tape binding.

use magic_autograd::{Tape, Var};
use magic_tensor::Tensor;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// Owns all trainable tensors of a model, plus their accumulated
/// gradients.
///
/// MAGIC trains on graphs of different sizes, so a mini-batch is processed
/// as a sequence of per-graph tapes whose parameter gradients are
/// *accumulated* here and applied once per batch by an
/// [`crate::Optimizer`].
///
/// The serial lifecycle per batch is:
/// 1. [`ParamStore::zero_grads`],
/// 2. per example: [`ParamStore::bind`] onto a fresh tape, forward,
///    `tape.backward(loss)`, then [`ParamStore::accumulate_grads`],
/// 3. `optimizer.step(&mut store, batch_len)`.
///
/// Under data-parallel training the read path ([`ParamStore::bind`],
/// which takes `&self`) is shared across worker threads, while each
/// in-flight sample accumulates into its own [`GradBuffer`]; the buffers
/// are then folded back with [`ParamStore::reduce`] *in sample order*,
/// so the float-addition order — and therefore every bit of the result —
/// matches the serial lifecycle above.
#[derive(Debug, Default, Clone)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    grads: GradBuffer,
}

/// Gradient accumulators for every parameter of a [`ParamStore`],
/// decoupled from the parameter values.
///
/// Worker threads each own one of these (sized via
/// [`GradBuffer::for_store`]) while sharing the read-only store, so
/// back-propagation never contends on the parameters. Buffers are meant
/// to be reused: [`GradBuffer::zero`] between samples,
/// [`GradBuffer::accumulate`] after each backward pass.
#[derive(Debug, Default, Clone)]
pub struct GradBuffer {
    grads: Vec<Tensor>,
}

impl GradBuffer {
    /// Creates a zeroed buffer shaped like `store`'s parameters.
    pub fn for_store(store: &ParamStore) -> Self {
        GradBuffer {
            grads: store
                .values
                .iter()
                .map(|v| Tensor::zeros(v.shape().clone()))
                .collect(),
        }
    }

    /// Number of parameter slots.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Whether the buffer tracks no parameters.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Accumulated gradient for one parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Resets every accumulator to zero, keeping allocations.
    pub fn zero(&mut self) {
        for g in &mut self.grads {
            for x in g.as_mut_slice() {
                *x = 0.0;
            }
        }
    }

    /// Adds the gradients `tape` computed for `binding`'s variables.
    pub fn accumulate(&mut self, tape: &Tape, binding: &Binding) {
        for (i, var) in binding.vars.iter().enumerate() {
            if let Some(g) = tape.grad(*var) {
                self.grads[i].add_assign(g);
            }
        }
    }

    /// Adds another buffer's accumulators into this one, element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the buffers track different parameter sets.
    pub fn add_from(&mut self, other: &GradBuffer) {
        assert_eq!(
            self.grads.len(),
            other.grads.len(),
            "buffers track different parameter sets"
        );
        for (mine, theirs) in self.grads.iter_mut().zip(&other.grads) {
            mine.add_assign(theirs);
        }
    }

    /// Global L2 norm of all accumulators.
    pub fn norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.as_slice().iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all accumulators so the global norm is at most `max_norm`.
    pub fn clip_norm(&mut self, max_norm: f32) {
        let norm = self.norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads {
                g.scale_assign(s);
            }
        }
    }
}

/// The tape variables produced by one [`ParamStore::bind`] call.
#[derive(Debug)]
pub struct Binding {
    vars: Vec<Var>,
}

impl Binding {
    /// The tape variable bound for `id` in this binding.
    pub fn var(&self, id: ParamId) -> Var {
        self.vars[id.0]
    }
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a parameter with an initial value; returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.shape().clone());
        self.names.push(name.into());
        self.values.push(value);
        self.grads.grads.push(grad);
        ParamId(self.values.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store has no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of trainable scalar weights.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Parameter value by id.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable parameter value by id.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Accumulated gradient by id.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        self.grads.grad(id)
    }

    /// Parameter name by id.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(name, value)` pairs, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.names.iter().map(String::as_str).zip(self.values.iter())
    }

    /// Looks a parameter up by registration name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Mutable access to a parameter by name (convenient for tests and
    /// checkpoint loading).
    ///
    /// # Panics
    ///
    /// Panics if no parameter has that name.
    pub fn value_mut_by_name(&mut self, name: &str) -> &mut Tensor {
        let id = self
            .find(name)
            .unwrap_or_else(|| panic!("no parameter named {name:?}"));
        self.value_mut(id)
    }

    /// Leafs every parameter onto `tape` (with gradients enabled) and
    /// returns the binding used to look the variables up during the
    /// forward pass.
    pub fn bind(&self, tape: &mut Tape) -> Binding {
        Binding {
            vars: self
                .values
                .iter()
                .map(|v| tape.leaf(v.clone(), true))
                .collect(),
        }
    }

    /// Adds the gradients `tape` computed for `binding`'s variables into
    /// the store's accumulators.
    pub fn accumulate_grads(&mut self, tape: &Tape, binding: &Binding) {
        self.grads.accumulate(tape, binding);
    }

    /// Folds a worker's [`GradBuffer`] into the store's accumulators.
    ///
    /// Data-parallel training calls this once per sample, in sample
    /// order, so the accumulated sum is bitwise identical to the serial
    /// [`ParamStore::accumulate_grads`] sequence.
    ///
    /// # Panics
    ///
    /// Panics if `buffer` was not sized for this store.
    pub fn reduce(&mut self, buffer: &GradBuffer) {
        self.grads.add_from(buffer);
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.grads.zero();
    }

    /// Applies `update(value, grad)` to every parameter. Used by
    /// optimizers.
    pub(crate) fn update_each(&mut self, mut update: impl FnMut(usize, &mut Tensor, &Tensor)) {
        for i in 0..self.values.len() {
            update(i, &mut self.values[i], &self.grads.grads[i]);
        }
    }

    /// Global L2 norm of all accumulated gradients (for diagnostics and
    /// gradient clipping).
    pub fn grad_norm(&self) -> f32 {
        self.grads.norm()
    }

    /// Scales all gradients so their global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        self.grads.clip_norm(max_norm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_autograd::Tape;

    #[test]
    fn bind_and_accumulate_roundtrip() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[2.0]]));

        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let x = tape.leaf(Tensor::from_rows(&[&[3.0]]), false);
        let y = tape.matmul(x, binding.var(w));
        let loss = tape.sum(y);
        tape.backward(loss);
        store.accumulate_grads(&tape, &binding);

        assert_eq!(store.grad(w).as_slice(), &[3.0]);
    }

    #[test]
    fn gradients_accumulate_across_tapes() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[1.0]]));
        for _ in 0..3 {
            let mut tape = Tape::new();
            let binding = store.bind(&mut tape);
            let loss = tape.sum(binding.var(w));
            tape.backward(loss);
            store.accumulate_grads(&tape, &binding);
        }
        assert_eq!(store.grad(w).as_slice(), &[3.0]);
        store.zero_grads();
        assert_eq!(store.grad(w).as_slice(), &[0.0]);
    }

    #[test]
    fn num_weights_counts_scalars() {
        let mut store = ParamStore::new();
        store.add("a", Tensor::zeros([2, 3]));
        store.add("b", Tensor::zeros([4]));
        assert_eq!(store.num_weights(), 10);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros([2]));
        {
            let mut tape = Tape::new();
            let binding = store.bind(&mut tape);
            let s = tape.scale(binding.var(w), 1.0);
            let t = tape.sum(s);
            tape.backward(t);
            store.accumulate_grads(&tape, &binding);
        }
        // grad = [1, 1], norm = sqrt(2)
        store.clip_grad_norm(1.0);
        assert!((store.grad(w).frobenius_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn names_are_preserved() {
        let mut store = ParamStore::new();
        let id = store.add("conv1.weight", Tensor::zeros([1]));
        assert_eq!(store.name(id), "conv1.weight");
        let collected: Vec<&str> = store.iter().map(|(n, _)| n).collect();
        assert_eq!(collected, vec!["conv1.weight"]);
    }

    /// A small two-parameter model whose per-sample gradients are
    /// non-trivial floats (so addition order actually matters at the
    /// bit level).
    fn sample_store() -> (ParamStore, ParamId, ParamId) {
        let mut store = ParamStore::new();
        let mut rng = magic_tensor::Rng64::new(77);
        let w = store.add("w", Tensor::rand_uniform([3, 2], -1.0, 1.0, &mut rng));
        let b = store.add("b", Tensor::rand_uniform([1, 2], -1.0, 1.0, &mut rng));
        (store, w, b)
    }

    /// Runs one forward/backward for sample `i` and accumulates into
    /// `accumulate(tape, binding)`.
    fn backprop_sample(store: &ParamStore, w: ParamId, b: ParamId, i: u64, mut sink: impl FnMut(&Tape, &Binding)) {
        let mut rng = magic_tensor::Rng64::new(1000 + i);
        let x = Tensor::rand_uniform([1, 3], -1.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let xv = tape.leaf(x, false);
        let h = tape.matmul(xv, binding.var(w));
        let y = tape.add(h, binding.var(b));
        let t = tape.tanh(y);
        let loss = tape.sum(t);
        tape.backward(loss);
        sink(&tape, &binding);
    }

    /// The data-parallel reduction contract: accumulating each sample
    /// into its own GradBuffer and folding the buffers back in sample
    /// order is *bitwise* identical to serial accumulate_grads calls.
    #[test]
    fn buffer_reduction_matches_serial_accumulation_bitwise() {
        use magic_autograd::first_bitwise_mismatch;
        let (store, w, b) = sample_store();
        let samples = 7u64;

        // Serial reference: one store, accumulate_grads per sample.
        let mut serial = store.clone();
        for i in 0..samples {
            backprop_sample(&store, w, b, i, |tape, binding| {
                serial.accumulate_grads(tape, binding);
            });
        }

        // Parallel shape: per-sample buffers, reduced in sample order.
        let mut buffers: Vec<GradBuffer> =
            (0..samples).map(|_| GradBuffer::for_store(&store)).collect();
        for (i, buffer) in buffers.iter_mut().enumerate() {
            backprop_sample(&store, w, b, i as u64, |tape, binding| {
                buffer.accumulate(tape, binding);
            });
        }
        let mut reduced = store.clone();
        for buffer in &buffers {
            reduced.reduce(buffer);
        }

        for id in [w, b] {
            assert_eq!(
                first_bitwise_mismatch(serial.grad(id), reduced.grad(id)),
                None,
                "reduction differs from serial accumulation for {}",
                serial.name(id)
            );
        }
        // Sanity: the gradients are not all zero (the test would pass
        // vacuously otherwise).
        assert!(serial.grad_norm() > 0.0);
    }

    #[test]
    fn buffer_zero_and_add_from_compose() {
        let (store, w, _b) = sample_store();
        let mut a = GradBuffer::for_store(&store);
        let mut total = GradBuffer::for_store(&store);
        for i in 0..3u64 {
            a.zero();
            backprop_sample(&store, w, _b, i, |tape, binding| a.accumulate(tape, binding));
            total.add_from(&a);
        }
        assert!(total.norm() > 0.0);
        total.zero();
        assert_eq!(total.norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "different parameter sets")]
    fn mismatched_buffers_are_rejected() {
        let (store, _, _) = sample_store();
        let mut buffer = GradBuffer::for_store(&store);
        buffer.add_from(&GradBuffer::default());
    }

    /// The store's read path (`bind` takes `&self`) is shared across
    /// training workers, and buffers move to worker threads; both must
    /// stay Send + Sync.
    #[test]
    fn store_and_buffers_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParamStore>();
        assert_send_sync::<GradBuffer>();
        assert_send_sync::<Binding>();
    }
}
