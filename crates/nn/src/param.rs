//! Trainable parameter storage and tape binding.

use magic_autograd::{Tape, Var};
use magic_tensor::Tensor;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// Owns all trainable tensors of a model, plus their accumulated
/// gradients.
///
/// MAGIC trains on graphs of different sizes, so a mini-batch is processed
/// as a sequence of per-graph tapes whose parameter gradients are
/// *accumulated* here and applied once per batch by an
/// [`crate::Optimizer`].
///
/// The lifecycle per batch is:
/// 1. [`ParamStore::zero_grads`],
/// 2. per example: [`ParamStore::bind`] onto a fresh tape, forward,
///    `tape.backward(loss)`, then [`ParamStore::accumulate_grads`],
/// 3. `optimizer.step(&mut store, batch_len)`.
#[derive(Debug, Default, Clone)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
}

/// The tape variables produced by one [`ParamStore::bind`] call.
#[derive(Debug)]
pub struct Binding {
    vars: Vec<Var>,
}

impl Binding {
    /// The tape variable bound for `id` in this binding.
    pub fn var(&self, id: ParamId) -> Var {
        self.vars[id.0]
    }
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a parameter with an initial value; returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.shape().clone());
        self.names.push(name.into());
        self.values.push(value);
        self.grads.push(grad);
        ParamId(self.values.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store has no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of trainable scalar weights.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Parameter value by id.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable parameter value by id.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Accumulated gradient by id.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Parameter name by id.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(name, value)` pairs, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.names.iter().map(String::as_str).zip(self.values.iter())
    }

    /// Looks a parameter up by registration name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Mutable access to a parameter by name (convenient for tests and
    /// checkpoint loading).
    ///
    /// # Panics
    ///
    /// Panics if no parameter has that name.
    pub fn value_mut_by_name(&mut self, name: &str) -> &mut Tensor {
        let id = self
            .find(name)
            .unwrap_or_else(|| panic!("no parameter named {name:?}"));
        self.value_mut(id)
    }

    /// Leafs every parameter onto `tape` (with gradients enabled) and
    /// returns the binding used to look the variables up during the
    /// forward pass.
    pub fn bind(&self, tape: &mut Tape) -> Binding {
        Binding {
            vars: self
                .values
                .iter()
                .map(|v| tape.leaf(v.clone(), true))
                .collect(),
        }
    }

    /// Adds the gradients `tape` computed for `binding`'s variables into
    /// the store's accumulators.
    pub fn accumulate_grads(&mut self, tape: &Tape, binding: &Binding) {
        for (i, var) in binding.vars.iter().enumerate() {
            if let Some(g) = tape.grad(*var) {
                self.grads[i].add_assign(g);
            }
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            for x in g.as_mut_slice() {
                *x = 0.0;
            }
        }
    }

    /// Applies `update(value, grad)` to every parameter. Used by
    /// optimizers.
    pub(crate) fn update_each(&mut self, mut update: impl FnMut(usize, &mut Tensor, &Tensor)) {
        for i in 0..self.values.len() {
            update(i, &mut self.values[i], &self.grads[i]);
        }
    }

    /// Global L2 norm of all accumulated gradients (for diagnostics and
    /// gradient clipping).
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.as_slice().iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so their global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads {
                g.scale_assign(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_autograd::Tape;

    #[test]
    fn bind_and_accumulate_roundtrip() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[2.0]]));

        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let x = tape.leaf(Tensor::from_rows(&[&[3.0]]), false);
        let y = tape.matmul(x, binding.var(w));
        let loss = tape.sum(y);
        tape.backward(loss);
        store.accumulate_grads(&tape, &binding);

        assert_eq!(store.grad(w).as_slice(), &[3.0]);
    }

    #[test]
    fn gradients_accumulate_across_tapes() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[1.0]]));
        for _ in 0..3 {
            let mut tape = Tape::new();
            let binding = store.bind(&mut tape);
            let loss = tape.sum(binding.var(w));
            tape.backward(loss);
            store.accumulate_grads(&tape, &binding);
        }
        assert_eq!(store.grad(w).as_slice(), &[3.0]);
        store.zero_grads();
        assert_eq!(store.grad(w).as_slice(), &[0.0]);
    }

    #[test]
    fn num_weights_counts_scalars() {
        let mut store = ParamStore::new();
        store.add("a", Tensor::zeros([2, 3]));
        store.add("b", Tensor::zeros([4]));
        assert_eq!(store.num_weights(), 10);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros([2]));
        {
            let mut tape = Tape::new();
            let binding = store.bind(&mut tape);
            let s = tape.scale(binding.var(w), 1.0);
            let t = tape.sum(s);
            tape.backward(t);
            store.accumulate_grads(&tape, &binding);
        }
        // grad = [1, 1], norm = sqrt(2)
        store.clip_grad_norm(1.0);
        assert!((store.grad(w).frobenius_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn names_are_preserved() {
        let mut store = ParamStore::new();
        let id = store.add("conv1.weight", Tensor::zeros([1]));
        assert_eq!(store.name(id), "conv1.weight");
        let collected: Vec<&str> = store.iter().map(|(n, _)| n).collect();
        assert_eq!(collected, vec!["conv1.weight"]);
    }
}
