//! Weight initialization schemes.

use magic_tensor::{Rng64, Shape, Tensor};

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suited to the tanh/sigmoid and
/// linear layers.
pub fn xavier_uniform(shape: impl Into<Shape>, fan_in: usize, fan_out: usize, rng: &mut Rng64) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

/// He/Kaiming uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / fan_in)`. Suited to the ReLU activations used in the
/// paper's graph convolution layers.
pub fn he_uniform(shape: impl Into<Shape>, fan_in: usize, rng: &mut Rng64) -> Tensor {
    let a = (6.0 / fan_in as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bound_depends_on_fans() {
        let mut rng = Rng64::new(1);
        let t = xavier_uniform([100, 100], 100, 100, &mut rng);
        let a = (6.0f32 / 200.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= a));
        // Values actually spread out, not collapsed near zero.
        assert!(t.max() > a * 0.8);
        assert!(t.min() < -a * 0.8);
    }

    #[test]
    fn he_bound_depends_on_fan_in() {
        let mut rng = Rng64::new(2);
        let t = he_uniform([50, 50], 50, &mut rng);
        let a = (6.0f32 / 50.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let mut r1 = Rng64::new(9);
        let mut r2 = Rng64::new(9);
        let a = xavier_uniform([4, 4], 4, 4, &mut r1);
        let b = xavier_uniform([4, 4], 4, 4, &mut r2);
        assert_eq!(a, b);
    }
}
