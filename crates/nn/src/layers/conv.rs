//! Trainable 1-D and 2-D convolution layers.

use crate::param::{Binding, ParamId, ParamStore};
use magic_autograd::{Tape, Var};
use magic_tensor::{Rng64, Tensor};

/// A 1-D convolution over `(c_in, len)` signals, used by the original
/// DGCNN head that MAGIC compares against (Table II's "1D Convolution"
/// rows).
#[derive(Debug, Clone)]
pub struct Conv1dLayer {
    w: ParamId,
    b: ParamId,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
}

impl Conv1dLayer {
    /// Registers `(c_out, c_in, k)` weights (He-initialized) and a zero
    /// bias in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        rng: &mut Rng64,
    ) -> Self {
        let fan_in = in_channels * kernel;
        let w = store.add(
            format!("{name}.weight"),
            crate::init::he_uniform([out_channels, in_channels, kernel], fan_in, rng),
        );
        let b = store.add(format!("{name}.bias"), Tensor::zeros([out_channels]));
        Conv1dLayer { w, b, in_channels, out_channels, kernel, stride }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Applies the convolution followed by ReLU.
    pub fn forward(&self, tape: &mut Tape, binding: &Binding, x: Var) -> Var {
        let y = tape.conv1d(x, binding.var(self.w), binding.var(self.b), self.stride);
        tape.relu(y)
    }

    /// [`Conv1dLayer::forward`] over a mini-batch whose samples occupy
    /// equal column segments of `seg_len` in `x` — the convolution runs
    /// per segment (windows never straddle a boundary), with weight and
    /// bias gradients unstacked per sample for bitwise parity.
    pub fn forward_batched(&self, tape: &mut Tape, binding: &Binding, x: Var, seg_len: usize) -> Var {
        let y = tape.conv1d_batched(x, binding.var(self.w), binding.var(self.b), self.stride, seg_len);
        tape.relu(y)
    }
}

/// A 2-D convolution over `(c_in, h, w)` feature maps, used by the
/// VGG-inspired classification head after adaptive max pooling
/// (Section III-C).
#[derive(Debug, Clone)]
pub struct Conv2dLayer {
    w: ParamId,
    b: ParamId,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
}

impl Conv2dLayer {
    /// Registers `(c_out, c_in, k, k)` weights (He-initialized) and a zero
    /// bias in `store`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng64,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let w = store.add(
            format!("{name}.weight"),
            crate::init::he_uniform([out_channels, in_channels, kernel, kernel], fan_in, rng),
        );
        let b = store.add(format!("{name}.bias"), Tensor::zeros([out_channels]));
        Conv2dLayer { w, b, in_channels, out_channels, kernel, stride, pad }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Applies the convolution followed by ReLU.
    pub fn forward(&self, tape: &mut Tape, binding: &Binding, x: Var) -> Var {
        let y = tape.conv2d(x, binding.var(self.w), binding.var(self.b), self.stride, self.pad);
        tape.relu(y)
    }

    /// [`Conv2dLayer::forward`] over a mini-batch of column-stacked
    /// feature maps: `x` is `(c_in, Σ h_j·w_j)` and `dims` gives each
    /// sample's spatial extent. Weight and bias gradients are unstacked
    /// per sample for bitwise parity with per-sample execution.
    pub fn forward_batched(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        x: Var,
        dims: std::sync::Arc<Vec<(usize, usize)>>,
    ) -> Var {
        let y = tape.conv2d_batched(
            x,
            binding.var(self.w),
            binding.var(self.b),
            self.stride,
            self.pad,
            dims,
        );
        tape.relu(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv1d_layer_output_shape() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(0);
        let layer = Conv1dLayer::new(&mut store, "c1", 1, 16, 4, 4, &mut rng);
        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let x = tape.leaf(Tensor::ones([1, 12]), false);
        let y = layer.forward(&mut tape, &binding, x);
        assert_eq!(tape.value(y).shape().dims(), &[16, 3]);
    }

    #[test]
    fn conv2d_layer_padding_keeps_spatial_size() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(1);
        let layer = Conv2dLayer::new(&mut store, "c2", 1, 8, 3, 1, 1, &mut rng);
        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let x = tape.leaf(Tensor::ones([1, 5, 6]), false);
        let y = layer.forward(&mut tape, &binding, x);
        assert_eq!(tape.value(y).shape().dims(), &[8, 5, 6]);
    }

    #[test]
    fn conv_layers_receive_gradients() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(2);
        let c1 = Conv1dLayer::new(&mut store, "c1", 2, 3, 2, 2, &mut rng);
        let c2 = Conv2dLayer::new(&mut store, "c2", 1, 2, 3, 1, 1, &mut rng);

        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let x1 = tape.leaf(Tensor::ones([2, 8]), false);
        let y1 = c1.forward(&mut tape, &binding, x1);
        let y1m = tape.reshape(y1, [1, 3, 4]);
        let y2 = c2.forward(&mut tape, &binding, y1m);
        let loss = tape.sum(y2);
        tape.backward(loss);
        store.accumulate_grads(&tape, &binding);

        assert_eq!(store.grad(c1.w).shape().dims(), &[3, 2, 2]);
        assert_eq!(store.grad(c2.w).shape().dims(), &[2, 1, 3, 3]);
    }
}
