//! Fully connected layer.

use crate::param::{Binding, ParamId, ParamStore};
use magic_autograd::{Tape, Var};
use magic_tensor::Rng64;

/// A dense affine layer `y = x W + b` mapping `(n, in)` to `(n, out)`.
///
/// Used for the final one-layer perceptron of the original DGCNN head and
/// the classifier MLPs of both MAGIC heads.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Registers the layer's weight `(in, out)` (Xavier-initialized) and
    /// bias `(out)` (zeros) in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut Rng64,
    ) -> Self {
        let w = store.add(
            format!("{name}.weight"),
            crate::init::xavier_uniform([in_features, out_features], in_features, out_features, rng),
        );
        let b = store.add(
            format!("{name}.bias"),
            magic_tensor::Tensor::zeros([out_features]),
        );
        Linear { w, b, in_features, out_features }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Applies the layer on the tape.
    pub fn forward(&self, tape: &mut Tape, binding: &Binding, x: Var) -> Var {
        let xw = tape.matmul(x, binding.var(self.w));
        tape.add_bias(xw, binding.var(self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_tensor::Tensor;

    #[test]
    fn forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(0);
        let layer = Linear::new(&mut store, "fc", 3, 2, &mut rng);
        // Overwrite with known weights for a deterministic check.
        *store.value_mut(layer.w) = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        *store.value_mut(layer.b) = Tensor::from_slice(&[10.0, 20.0]);

        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let x = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0, 3.0]]), false);
        let y = layer.forward(&mut tape, &binding, x);
        assert_eq!(tape.value(y).row(0), &[14.0, 25.0]);
    }

    #[test]
    fn gradients_flow_to_both_parameters() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(1);
        let layer = Linear::new(&mut store, "fc", 2, 2, &mut rng);

        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let x = tape.leaf(Tensor::ones([4, 2]), false);
        let y = layer.forward(&mut tape, &binding, x);
        let loss = tape.sum(y);
        tape.backward(loss);
        store.accumulate_grads(&tape, &binding);

        assert!(store.grad(layer.w).as_slice().iter().all(|&g| g == 4.0));
        assert!(store.grad(layer.b).as_slice().iter().all(|&g| g == 4.0));
    }
}
