//! The graph convolution layer of Eq. (1):
//! `Z_{t+1} = f(D̂⁻¹ Â Z_t W_t)`.

use crate::param::{Binding, ParamId, ParamStore};
use magic_autograd::{Tape, Var};
use magic_tensor::{CsrMatrix, Rng64, Tensor};
use std::sync::Arc;

/// One DGCNN graph convolution layer.
///
/// Given the (constant, per-graph) augmented adjacency matrix
/// `Â = A + I` and the inverse augmented degrees `D̂⁻¹`, the layer
/// computes `f(D̂⁻¹ Â Z W)` with `W ∈ R^{c_in × c_out}` trainable and `f`
/// an elementwise ReLU (as in Fig. 3 of the paper).
#[derive(Debug, Clone)]
pub struct GraphConv {
    w: ParamId,
    in_channels: usize,
    out_channels: usize,
}

impl GraphConv {
    /// Registers the layer's weight matrix in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        rng: &mut Rng64,
    ) -> Self {
        let w = store.add(
            format!("{name}.weight"),
            crate::init::xavier_uniform([in_channels, out_channels], in_channels, out_channels, rng),
        );
        GraphConv { w, in_channels, out_channels }
    }

    /// Number of input feature channels `c_t`.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output feature channels `c_{t+1}`.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Applies the layer.
    ///
    /// * `adj` — the augmented adjacency `Â` as a constant tape leaf.
    /// * `inv_degree` — the diagonal of `D̂⁻¹` (one entry per vertex).
    /// * `z` — the incoming vertex feature matrix `(n, c_in)`.
    ///
    /// Returns `(n, c_out)`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        adj: Var,
        inv_degree: &[f32],
        z: Var,
    ) -> Var {
        let f = tape.matmul(z, binding.var(self.w)); // F = Z W
        let o = tape.matmul(adj, f); // O = Â F
        let n = tape.scale_rows(o, inv_degree.to_vec()); // D̂⁻¹ O
        tape.relu(n)
    }

    /// Applies the layer over a CSR adjacency — the production path.
    ///
    /// Identical mathematics to [`GraphConv::forward`], but the
    /// `D̂⁻¹ (Â ·)` half runs as one fused `spmm_norm` op over the `n + e`
    /// nonzeros instead of a dense `n×n` product, so cost and memory
    /// scale with edges. `adj_t` is the precomputed transpose used by the
    /// backward pass.
    pub fn forward_sparse(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        adj: &Arc<CsrMatrix>,
        adj_t: &Arc<CsrMatrix>,
        inv_degree: &Arc<Vec<f32>>,
        z: Var,
    ) -> Var {
        let f = tape.matmul(z, binding.var(self.w)); // F = Z W
        let o = tape.spmm_norm(
            Arc::clone(adj),
            Arc::clone(adj_t),
            Arc::clone(inv_degree),
            f,
        ); // D̂⁻¹ (Â F)
        tape.relu(o)
    }

    /// [`GraphConv::forward_sparse`] over a block-diagonal batch: `z` holds
    /// the row-stacked vertex features of a whole mini-batch and `adj` is
    /// the batch's block-diagonal `Â`. `bounds` marks each sample's row
    /// segment so the shared weight's gradient is accumulated per sample,
    /// keeping the result bitwise identical to per-sample execution.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_sparse_batched(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        adj: &Arc<CsrMatrix>,
        adj_t: &Arc<CsrMatrix>,
        inv_degree: &Arc<Vec<f32>>,
        z: Var,
        bounds: &Arc<Vec<usize>>,
    ) -> Var {
        let f = tape.matmul_batched(z, binding.var(self.w), Arc::clone(bounds));
        let o = tape.spmm_norm_batched(
            Arc::clone(adj),
            Arc::clone(adj_t),
            Arc::clone(inv_degree),
            f,
        );
        tape.relu(o)
    }
}

/// Computes `Â = A + I` and the inverse augmented degree diagonal from a
/// raw adjacency matrix. The degree of vertex `i` is `Σ_j Â[i][j]` (out-
/// degree plus self-loop, as in Section III-A1 of the paper).
///
/// # Panics
///
/// Panics if `adj` is not square.
pub fn augment_adjacency(adj: &Tensor) -> (Tensor, Vec<f32>) {
    let n = adj.rows();
    assert_eq!(n, adj.cols(), "adjacency matrix must be square");
    let a_hat = adj.add(&Tensor::eye(n));
    let inv_degree = a_hat
        .sum_cols()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
        .collect();
    (a_hat, inv_degree)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Figs. 2–3: the 5-vertex graph `g` with two
    /// attribute channels, convolved with the paper's `W1`.
    ///
    /// The paper's edge list (from Â in Fig. 2):
    /// 1→2, 1→3, 2→4, 3→4, 3→5, 4→2 (1-indexed), plus self loops.
    fn paper_graph() -> (Tensor, Tensor) {
        let mut a = Tensor::zeros([5, 5]);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 1)] {
            a.set2(u, v, 1.0);
        }
        // Attribute matrix X from Fig. 2, channels F1 and F2.
        let x = Tensor::from_rows(&[
            &[2.0, 1.0],
            &[2.0, 0.0],
            &[1.0, 3.0],
            &[3.0, 2.0],
            &[1.0, 5.0],
        ]);
        (a, x)
    }

    #[test]
    fn augment_adds_self_loops_and_inverts_degree() {
        let (a, _) = paper_graph();
        let (a_hat, inv_deg) = augment_adjacency(&a);
        // Vertex 0 has out-edges to 1 and 2 plus the self loop: degree 3.
        assert_eq!(a_hat.get2(0, 0), 1.0);
        assert!((inv_deg[0] - 1.0 / 3.0).abs() < 1e-6);
        // Vertex 4 has only the self loop: degree 1.
        assert!((inv_deg[4] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn forward_matches_paper_figure_3_layer_1() {
        // The paper's W1 = [[1, 0, 1], [0, 1, 0]] maps 2 channels to 3.
        let (a, x) = paper_graph();
        let (a_hat, inv_deg) = augment_adjacency(&a);

        let mut store = ParamStore::new();
        let mut rng = Rng64::new(0);
        let layer = GraphConv::new(&mut store, "gc1", 2, 3, &mut rng);
        *store.value_mut(layer.w) = Tensor::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);

        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let adj = tape.leaf(a_hat, false);
        let z0 = tape.leaf(x.clone(), false);
        let z1 = layer.forward(&mut tape, &binding, adj, &inv_deg, z0);

        // Hand-computed D̂⁻¹ Â X W1 for the paper graph (2-decimal
        // precision in Fig. 3). Row 0 aggregates vertices {0,1,2}:
        // sum X = [5, 4], /3 -> [1.67, 1.33], W1 -> [1.67, 1.33, 1.67].
        let z1v = tape.value(z1);
        assert!((z1v.get2(0, 0) - 5.0 / 3.0).abs() < 1e-4);
        assert!((z1v.get2(0, 1) - 4.0 / 3.0).abs() < 1e-4);
        assert!((z1v.get2(0, 2) - 5.0 / 3.0).abs() < 1e-4);
        // Vertex 4 (self loop only): X row [1, 5] -> [1, 5, 1].
        assert_eq!(z1v.row(4), &[1.0, 5.0, 1.0]);
        // All outputs are ReLU'd, hence non-negative.
        assert!(z1v.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn sparse_forward_matches_dense_on_paper_graph() {
        let (a, x) = paper_graph();
        let (a_hat, inv_deg) = augment_adjacency(&a);
        let (csr, inv_deg_csr) = CsrMatrix::augmented_from_edges(
            5,
            [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 1)],
        );
        assert_eq!(inv_deg, inv_deg_csr, "both constructions agree on D̂⁻¹");
        let adj = Arc::new(csr);
        let adj_t = Arc::new(adj.transpose());
        let inv = Arc::new(inv_deg_csr);

        let mut store = ParamStore::new();
        let mut rng = Rng64::new(21);
        let layer = GraphConv::new(&mut store, "gc", 2, 4, &mut rng);

        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let adj_dense = tape.leaf(a_hat, false);
        let z0 = tape.leaf(x.clone(), false);
        let dense_out = layer.forward(&mut tape, &binding, adj_dense, &inv_deg, z0);

        let z0s = tape.leaf(x, false);
        let sparse_out = layer.forward_sparse(&mut tape, &binding, &adj, &adj_t, &inv, z0s);

        let (d, s) = (tape.value(dense_out), tape.value(sparse_out));
        for (a, b) in d.as_slice().iter().zip(s.as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn sparse_gradient_reaches_weight_through_structure() {
        let (_, x) = paper_graph();
        let (csr, inv_deg) = CsrMatrix::augmented_from_edges(
            5,
            [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 1)],
        );
        let adj = Arc::new(csr);
        let adj_t = Arc::new(adj.transpose());
        let inv = Arc::new(inv_deg);

        let mut store = ParamStore::new();
        let mut rng = Rng64::new(3);
        let layer = GraphConv::new(&mut store, "gc", 2, 4, &mut rng);

        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let z0 = tape.leaf(x, false);
        let z1 = layer.forward_sparse(&mut tape, &binding, &adj, &adj_t, &inv, z0);
        let loss = tape.sum(z1);
        tape.backward(loss);
        store.accumulate_grads(&tape, &binding);
        assert!(store.grad(layer.w).frobenius_norm() > 0.0);
    }

    #[test]
    fn gradient_reaches_weight_through_structure() {
        let (a, x) = paper_graph();
        let (a_hat, inv_deg) = augment_adjacency(&a);
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(3);
        let layer = GraphConv::new(&mut store, "gc", 2, 4, &mut rng);

        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let adj = tape.leaf(a_hat, false);
        let z0 = tape.leaf(x, false);
        let z1 = layer.forward(&mut tape, &binding, adj, &inv_deg, z0);
        let loss = tape.sum(z1);
        tape.backward(loss);
        store.accumulate_grads(&tape, &binding);
        assert!(store.grad(layer.w).frobenius_norm() > 0.0);
    }

    #[test]
    fn isolated_vertex_keeps_own_features() {
        // A single vertex with no edges: Â = [1], D̂⁻¹ = [1], so the
        // convolution reduces to f(x W).
        let a = Tensor::zeros([1, 1]);
        let (a_hat, inv_deg) = augment_adjacency(&a);
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(4);
        let layer = GraphConv::new(&mut store, "gc", 2, 2, &mut rng);
        *store.value_mut(layer.w) = Tensor::eye(2);

        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let adj = tape.leaf(a_hat, false);
        let z0 = tape.leaf(Tensor::from_rows(&[&[3.0, 4.0]]), false);
        let z1 = layer.forward(&mut tape, &binding, adj, &inv_deg, z0);
        assert_eq!(tape.value(z1).row(0), &[3.0, 4.0]);
    }
}
