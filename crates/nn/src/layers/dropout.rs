//! Dropout regularization (Table II tunes its rate over {0.1, 0.5}).

use magic_autograd::{Tape, Var};
use magic_tensor::Rng64;

/// Inverted dropout: active only in training mode, identity at inference.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    rate: f32,
}

impl Dropout {
    /// Creates a dropout layer with the given drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate < 1`.
    pub fn new(rate: f32) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        Dropout { rate }
    }

    /// The drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    /// Applies dropout when `training` is true; otherwise passes `x`
    /// through untouched.
    pub fn forward(&self, tape: &mut Tape, x: Var, training: bool, rng: &mut Rng64) -> Var {
        if training && self.rate > 0.0 {
            tape.dropout(x, self.rate, rng)
        } else {
            x
        }
    }

    /// Batched variant: one row of `x` per sample, masked from that
    /// sample's own RNG stream so the mask bits match per-sample
    /// execution exactly regardless of batch composition.
    pub fn forward_rows(
        &self,
        tape: &mut Tape,
        x: Var,
        training: bool,
        rngs: &mut [Rng64],
    ) -> Var {
        if training && self.rate > 0.0 {
            tape.dropout_rows(x, self.rate, rngs)
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_tensor::Tensor;

    #[test]
    fn inference_mode_is_identity() {
        let mut rng = Rng64::new(0);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([4, 4]), false);
        let d = Dropout::new(0.5);
        let y = d.forward(&mut tape, x, false, &mut rng);
        assert_eq!(y, x);
    }

    #[test]
    fn training_mode_preserves_expectation() {
        let mut rng = Rng64::new(1);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([1, 10_000]), false);
        let d = Dropout::new(0.5);
        let y = d.forward(&mut tape, x, true, &mut rng);
        let mean = tape.value(y).mean();
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout mean {mean}");
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn rejects_rate_of_one() {
        Dropout::new(1.0);
    }
}
