//! The layers of the MAGIC architecture.

mod conv;
mod dropout;
mod graph_conv;
mod linear;
mod pooling;

pub use conv::{Conv1dLayer, Conv2dLayer};
pub use dropout::Dropout;
pub use graph_conv::{augment_adjacency, GraphConv};
pub use linear::Linear;
pub use pooling::{AdaptiveMaxPool2d, SortPooling, WeightedVertices};
