//! The three pooling/readout mechanisms compared in the paper:
//! SortPooling (original DGCNN), the WeightedVertices layer (Section
//! III-B) and adaptive max pooling (Section III-C).

use crate::param::{Binding, ParamId, ParamStore};
use magic_autograd::{Tape, Var};
use magic_tensor::Rng64;

/// The DGCNN SortPooling layer.
///
/// Sorts the vertices of the concatenated graph-convolution output
/// `Z^{1:h}` by their feature descriptors — primary key the last channel
/// of the last layer, descending, ties broken by progressively earlier
/// channels — then truncates or zero-pads to exactly `k` rows so every
/// graph yields a `(k, Σ c_t)` tensor.
#[derive(Debug, Clone, Copy)]
pub struct SortPooling {
    k: usize,
}

impl SortPooling {
    /// Creates a SortPooling layer retaining `k` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "SortPooling requires k > 0");
        SortPooling { k }
    }

    /// The number of retained vertices.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Applies the layer to the concatenated output `z_concat`
    /// (`(n, Σ c_t)`). The sort permutation is computed from the forward
    /// values and treated as constant during backpropagation (exactly as
    /// in the reference PyTorch implementation).
    pub fn forward(&self, tape: &mut Tape, z_concat: Var) -> Var {
        let order = tape.value(z_concat).argsort_rows_desc_lastcol();
        let keep: Vec<usize> = order.into_iter().take(self.k).collect();
        let gathered = tape.gather_rows(z_concat, keep);
        tape.pad_or_truncate_rows(gathered, self.k)
    }

    /// [`SortPooling::forward`] over a row-stacked batch: `bounds` marks
    /// each sample's vertex row segment in `z_concat`. Each segment is
    /// sorted independently (global indices; ties break on the row index,
    /// which an offset shift preserves, so the per-segment permutation is
    /// exactly the per-sample one) and padded to `k` rows with the
    /// `usize::MAX` sentinel. Returns `(batch·k, Σ c_t)` row-stacked.
    pub fn forward_batched(&self, tape: &mut Tape, z_concat: Var, bounds: &[usize]) -> Var {
        let indices: Vec<usize> = {
            let v = tape.value(z_concat);
            let mut idx = Vec::with_capacity((bounds.len() - 1) * self.k);
            for w in bounds.windows(2) {
                let order = v.argsort_rows_desc_lastcol_range(w[0], w[1]);
                let kept = order.len().min(self.k);
                idx.extend(order.into_iter().take(self.k));
                idx.extend(std::iter::repeat_n(usize::MAX, self.k - kept));
            }
            idx
        };
        tape.gather_rows_pad(z_concat, indices)
    }
}

/// The WeightedVertices layer of Section III-B (Eq. 3–4).
///
/// A single-channel Conv1D of kernel size `k` and stride `k` over the
/// SortPooling output is algebraically a row of weights `W ∈ R^{1×k}`
/// multiplying `Z^{sp}`: `E = f(W × Z^{sp})`, producing the graph
/// embedding `E ∈ R^{1×Σc_t}` as a weighted sum of vertex embeddings.
#[derive(Debug, Clone)]
pub struct WeightedVertices {
    w: ParamId,
    k: usize,
}

impl WeightedVertices {
    /// Registers the `1×k` weight row in `store`.
    ///
    /// The row is initialized *positive* (uniform in `(0, 2/k]`): the
    /// SortPooling output is non-negative (post-ReLU), so a sign-mixed
    /// initialization can start — and then permanently stay — in the dead
    /// region of the layer's ReLU, since a single output channel offers
    /// no alternative path for gradients. A positive start keeps the
    /// weighted sum alive; training is free to move individual weights
    /// negative afterwards.
    pub fn new(store: &mut ParamStore, name: &str, k: usize, rng: &mut Rng64) -> Self {
        let init = magic_tensor::Tensor::rand_uniform([1, k], 1e-3, 2.0 / k as f32, rng);
        let w = store.add(format!("{name}.weight"), init);
        WeightedVertices { w, k }
    }

    /// Number of vertex embeddings aggregated (the SortPooling `k`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Computes `E = relu(W × Z^{sp})`, shape `(1, Σ c_t)`.
    pub fn forward(&self, tape: &mut Tape, binding: &Binding, z_sp: Var) -> Var {
        let e = tape.matmul(binding.var(self.w), z_sp);
        tape.relu(e)
    }

    /// [`WeightedVertices::forward`] over a row-stacked batch of
    /// SortPooling outputs `(batch·k, Σ c_t)`: one weighted sum per
    /// `k`-row block, returning `(batch, Σ c_t)`. The shared weight's
    /// gradient is accumulated per block for bitwise parity.
    pub fn forward_batched(&self, tape: &mut Tape, binding: &Binding, z_sp: Var) -> Var {
        let e = tape.matmul_row_blocks(binding.var(self.w), z_sp, self.k);
        tape.relu(e)
    }
}

/// The adaptive max pooling layer of Section III-C.
///
/// Divides a `(c, h, w)` input into an `H×W` grid of windows (sized
/// adaptively per input, as in Fig. 6) and keeps the maximum of each
/// window and channel, producing `(c, H, W)` regardless of input size.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveMaxPool2d {
    out_h: usize,
    out_w: usize,
}

impl AdaptiveMaxPool2d {
    /// Creates a pooler with output grid `out_h × out_w`.
    ///
    /// # Panics
    ///
    /// Panics if either output dimension is zero.
    pub fn new(out_h: usize, out_w: usize) -> Self {
        assert!(out_h > 0 && out_w > 0, "output grid must be non-empty");
        AdaptiveMaxPool2d { out_h, out_w }
    }

    /// Output grid height.
    pub fn out_h(&self) -> usize {
        self.out_h
    }

    /// Output grid width.
    pub fn out_w(&self) -> usize {
        self.out_w
    }

    /// Applies the pooling on the tape.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        tape.adaptive_max_pool2d(x, self.out_h, self.out_w)
    }

    /// [`AdaptiveMaxPool2d::forward`] over a column-stacked batch:
    /// `x` is `(c, Σ h_j·w_j)` with per-sample extents `dims`, pooled to
    /// `(c, batch·out_h·out_w)`.
    pub fn forward_batched(&self, tape: &mut Tape, x: Var, dims: &[(usize, usize)]) -> Var {
        tape.adaptive_max_pool2d_batched(x, dims, self.out_h, self.out_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_tensor::Tensor;

    #[test]
    fn sortpool_orders_by_last_channel_then_truncates() {
        // Fig. 4 style: five vertices, sort on the last channel, keep 3.
        let z = Tensor::from_rows(&[
            &[0.0, 0.1],
            &[9.0, 0.5],
            &[0.0, 0.9],
            &[0.0, 0.2],
            &[0.0, 0.7],
        ]);
        let mut tape = Tape::new();
        let zv = tape.leaf(z, false);
        let sp = SortPooling::new(3);
        let out = sp.forward(&mut tape, zv);
        let v = tape.value(out);
        assert_eq!(v.shape().dims(), &[3, 2]);
        assert_eq!(v.row(0), &[0.0, 0.9]);
        assert_eq!(v.row(1), &[0.0, 0.7]);
        assert_eq!(v.row(2), &[9.0, 0.5]);
    }

    #[test]
    fn sortpool_pads_small_graphs_with_zero_rows() {
        let z = Tensor::from_rows(&[&[1.0, 2.0]]);
        let mut tape = Tape::new();
        let zv = tape.leaf(z, false);
        let out = SortPooling::new(4).forward(&mut tape, zv);
        let v = tape.value(out);
        assert_eq!(v.shape().dims(), &[4, 2]);
        assert_eq!(v.row(0), &[1.0, 2.0]);
        assert_eq!(v.row(3), &[0.0, 0.0]);
    }

    #[test]
    fn sortpool_gradient_skips_discarded_vertices() {
        let z = Tensor::from_rows(&[&[1.0, 3.0], &[1.0, 1.0], &[1.0, 2.0]]);
        let mut tape = Tape::new();
        let zv = tape.leaf(z, true);
        let out = SortPooling::new(2).forward(&mut tape, zv);
        let loss = tape.sum(out);
        tape.backward(loss);
        let g = tape.grad(zv).unwrap();
        // Vertices 0 (key 3.0) and 2 (key 2.0) are kept; vertex 1 dropped.
        assert_eq!(g.row(0), &[1.0, 1.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
        assert_eq!(g.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn weighted_vertices_matches_figure_5_arithmetic() {
        // Fig. 5: W = [0.4, 0.1, 0.5] applied to a 3-row Zsp.
        let z_sp = Tensor::from_rows(&[
            &[1.0, 0.0, 2.0],
            &[0.0, 1.0, 0.0],
            &[2.0, 2.0, 2.0],
        ]);
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(0);
        let wv = WeightedVertices::new(&mut store, "wv", 3, &mut rng);
        *store.value_mut(wv.w) = Tensor::from_rows(&[&[0.4, 0.1, 0.5]]);

        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let z = tape.leaf(z_sp, false);
        let e = wv.forward(&mut tape, &binding, z);
        let v = tape.value(e);
        assert_eq!(v.shape().dims(), &[1, 3]);
        // E = relu(0.4*row0 + 0.1*row1 + 0.5*row2)
        assert!((v.get2(0, 0) - 1.4).abs() < 1e-6);
        assert!((v.get2(0, 1) - 1.1).abs() < 1e-6);
        assert!((v.get2(0, 2) - 1.8).abs() < 1e-6);
    }

    #[test]
    fn weighted_vertices_weight_is_trainable() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(1);
        let wv = WeightedVertices::new(&mut store, "wv", 2, &mut rng);

        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        let z = tape.leaf(Tensor::ones([2, 3]), false);
        let e = wv.forward(&mut tape, &binding, z);
        let loss = tape.sum(e);
        tape.backward(loss);
        store.accumulate_grads(&tape, &binding);
        assert!(store.grad(wv.w).frobenius_norm() >= 0.0);
        assert_eq!(store.grad(wv.w).shape().dims(), &[1, 2]);
    }

    #[test]
    fn amp_unifies_different_input_sizes() {
        // Fig. 6: a 5x7 and a 4x7 input both pool to 3x3.
        let pool = AdaptiveMaxPool2d::new(3, 3);
        for h in [5usize, 4] {
            let x = Tensor::from_vec((0..(h * 7)).map(|v| v as f32).collect(), [1, h, 7]);
            let mut tape = Tape::new();
            let xv = tape.leaf(x, false);
            let y = pool.forward(&mut tape, xv);
            assert_eq!(tape.value(y).shape().dims(), &[1, 3, 3]);
        }
    }
}
