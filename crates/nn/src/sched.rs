//! Learning-rate scheduling.
//!
//! Section V-B of the paper: "Once the validation loss increases for two
//! continuous epochs, we decrease the learning rate by a factor of ten to
//! prevent the model from overfitting."

use crate::optim::Optimizer;

/// Reduce-on-plateau schedule: divides the learning rate by `factor`
/// whenever the monitored validation loss has risen for `patience`
/// consecutive epochs.
#[derive(Debug, Clone)]
pub struct ReduceLrOnPlateau {
    factor: f32,
    patience: usize,
    rising_epochs: usize,
    last_loss: Option<f32>,
    min_lr: f32,
}

impl ReduceLrOnPlateau {
    /// Creates the paper's schedule: factor 10, patience 2.
    pub fn paper_default() -> Self {
        Self::new(10.0, 2, 1e-7)
    }

    /// Creates a schedule dividing by `factor` after `patience` rising
    /// epochs, never going below `min_lr`.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1` or `patience == 0`.
    pub fn new(factor: f32, patience: usize, min_lr: f32) -> Self {
        assert!(factor > 1.0, "factor must exceed 1");
        assert!(patience > 0, "patience must be positive");
        ReduceLrOnPlateau {
            factor,
            patience,
            rising_epochs: 0,
            last_loss: None,
            min_lr,
        }
    }

    /// Records this epoch's validation loss; lowers the optimizer's
    /// learning rate if the plateau condition fires. Returns `true` when a
    /// reduction happened.
    pub fn observe(&mut self, validation_loss: f32, optimizer: &mut dyn Optimizer) -> bool {
        let rising = match self.last_loss {
            Some(prev) => validation_loss > prev,
            None => false,
        };
        self.last_loss = Some(validation_loss);
        if rising {
            self.rising_epochs += 1;
        } else {
            self.rising_epochs = 0;
        }
        if self.rising_epochs >= self.patience {
            self.rising_epochs = 0;
            let new_lr = (optimizer.learning_rate() / self.factor).max(self.min_lr);
            optimizer.set_learning_rate(new_lr);
            return true;
        }
        false
    }

    /// Consecutive rising epochs seen so far.
    pub fn rising_epochs(&self) -> usize {
        self.rising_epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};

    #[test]
    fn two_rising_epochs_cut_lr_by_ten() {
        let mut opt = Adam::new(0.1, 0.0);
        let mut sched = ReduceLrOnPlateau::paper_default();
        assert!(!sched.observe(1.0, &mut opt));
        assert!(!sched.observe(1.1, &mut opt)); // rising once
        assert!(sched.observe(1.2, &mut opt)); // rising twice -> cut
        assert!((opt.learning_rate() - 0.01).abs() < 1e-8);
    }

    #[test]
    fn improvement_resets_the_counter() {
        let mut opt = Adam::new(0.1, 0.0);
        let mut sched = ReduceLrOnPlateau::paper_default();
        sched.observe(1.0, &mut opt);
        sched.observe(1.1, &mut opt); // rising
        sched.observe(0.9, &mut opt); // improved: reset
        sched.observe(1.0, &mut opt); // rising once
        assert_eq!(sched.rising_epochs(), 1);
        assert!((opt.learning_rate() - 0.1).abs() < 1e-8);
    }

    #[test]
    fn lr_never_drops_below_min() {
        let mut opt = Adam::new(1e-6, 0.0);
        let mut sched = ReduceLrOnPlateau::new(10.0, 1, 1e-7);
        sched.observe(1.0, &mut opt);
        sched.observe(2.0, &mut opt);
        sched.observe(3.0, &mut opt);
        assert!(opt.learning_rate() >= 1e-7);
    }

    #[test]
    fn first_observation_never_fires() {
        let mut opt = Adam::new(0.1, 0.0);
        let mut sched = ReduceLrOnPlateau::new(10.0, 1, 0.0);
        assert!(!sched.observe(f32::INFINITY, &mut opt));
    }
}
