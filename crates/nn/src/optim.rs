//! Parameter optimizers: SGD with momentum, and the Adam algorithm the
//! paper uses (Section IV-B, [33]).

use crate::param::ParamStore;
use magic_tensor::Tensor;

/// A first-order optimizer updating a [`ParamStore`] in place from its
/// accumulated gradients.
pub trait Optimizer {
    /// Applies one update. `batch_size` divides the accumulated gradients
    /// so per-example tapes can simply sum into the store.
    fn step(&mut self, store: &mut ParamStore, batch_size: usize);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by LR schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and optional L2
/// weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd { lr, momentum, weight_decay, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, batch_size: usize) {
        let scale = 1.0 / batch_size.max(1) as f32;
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        store.update_each(|i, value, grad| {
            if velocity.len() <= i {
                velocity.push(Tensor::zeros(value.shape().clone()));
            }
            let v = &mut velocity[i];
            for ((w, g), vel) in value
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice())
                .zip(v.as_mut_slice())
            {
                let g = g * scale + wd * *w;
                *vel = mu * *vel + g;
                *w -= lr * *vel;
            }
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// The Adam optimizer ([Kingma & Ba 2014], the paper's choice) with
/// decoupled-style L2 regularization folded into the gradient, matching
/// PyTorch's `Adam(weight_decay=...)` semantics that MAGIC's Table II
/// tunes over {1e-4, 5e-4}.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the standard `beta1=0.9, beta2=0.999, eps=1e-8`.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, batch_size: usize) {
        self.t += 1;
        let scale = 1.0 / batch_size.max(1) as f32;
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let (lr, eps, wd) = (self.lr, self.eps, self.weight_decay);
        let (m, v) = (&mut self.m, &mut self.v);
        store.update_each(|i, value, grad| {
            if m.len() <= i {
                m.push(Tensor::zeros(value.shape().clone()));
                v.push(Tensor::zeros(value.shape().clone()));
            }
            let (mi, vi) = (&mut m[i], &mut v[i]);
            for (((w, g), mm), vv) in value
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice())
                .zip(mi.as_mut_slice())
                .zip(vi.as_mut_slice())
            {
                let g = g * scale + wd * *w;
                *mm = b1 * *mm + (1.0 - b1) * g;
                *vv = b2 * *vv + (1.0 - b2) * g * g;
                let m_hat = *mm / bc1;
                let v_hat = *vv / bc2;
                *w -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_autograd::Tape;

    /// Minimizes `(w - 3)^2` and checks convergence to 3.
    fn quadratic_descent(optimizer: &mut dyn Optimizer, iterations: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0).reshape([1, 1]));
        for _ in 0..iterations {
            store.zero_grads();
            let mut tape = Tape::new();
            let binding = store.bind(&mut tape);
            let target = tape.leaf(Tensor::from_rows(&[&[3.0]]), false);
            let diff = tape.sub(binding.var(w), target);
            let sq = tape.mul(diff, diff);
            let loss = tape.sum(sq);
            tape.backward(loss);
            store.accumulate_grads(&tape, &binding);
            optimizer.step(&mut store, 1);
        }
        store.value(w).as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let w = quadratic_descent(&mut opt, 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let mut plain = Sgd::new(0.01, 0.0, 0.0);
        let mut momentum = Sgd::new(0.01, 0.9, 0.0);
        let w_plain = quadratic_descent(&mut plain, 50);
        let w_momentum = quadratic_descent(&mut momentum, 50);
        assert!((w_momentum - 3.0).abs() < (w_plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2, 0.0);
        let w = quadratic_descent(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn weight_decay_shrinks_unused_parameter() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[10.0]]));
        let mut opt = Adam::new(0.1, 0.01);
        // No gradient signal at all: decay alone should shrink w.
        for _ in 0..50 {
            store.zero_grads();
            opt.step(&mut store, 1);
        }
        assert!(store.value(w).as_slice()[0].abs() < 10.0);
    }

    #[test]
    fn set_learning_rate_is_respected() {
        let mut opt = Adam::new(0.5, 0.0);
        opt.set_learning_rate(0.05);
        assert_eq!(opt.learning_rate(), 0.05);
    }

    #[test]
    fn batch_size_scales_gradient() {
        // Accumulating the same example twice with batch_size=2 must match
        // a single example with batch_size=1.
        let run = |repeats: usize| {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::from_rows(&[&[1.0]]));
            let mut opt = Sgd::new(0.1, 0.0, 0.0);
            store.zero_grads();
            for _ in 0..repeats {
                let mut tape = Tape::new();
                let binding = store.bind(&mut tape);
                let loss = tape.sum(binding.var(w));
                tape.backward(loss);
                store.accumulate_grads(&tape, &binding);
            }
            opt.step(&mut store, repeats);
            store.value(w).as_slice()[0]
        };
        assert!((run(1) - run(2)).abs() < 1e-6);
    }
}
