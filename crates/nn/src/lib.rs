#![warn(missing_docs)]

//! Neural network building blocks for the MAGIC DGCNN reproduction.
//!
//! This crate layers on top of [`magic_autograd`]: it owns trainable
//! parameters (in a [`ParamStore`]), binds them onto a gradient [`Tape`]
//! for each forward pass, and provides the layers the paper's architecture
//! needs — [`Linear`], [`GraphConv`] (Eq. 1), [`SortPooling`],
//! [`WeightedVertices`] (Eq. 3–4), [`Conv1dLayer`], [`Conv2dLayer`],
//! [`AdaptiveMaxPool2d`] and [`Dropout`] — together with the [`Adam`]
//! optimizer and the reduce-on-plateau learning-rate schedule of
//! Section V-B.
//!
//! [`Tape`]: magic_autograd::Tape
//!
//! # Example
//!
//! ```
//! use magic_autograd::Tape;
//! use magic_nn::{Linear, ParamStore};
//! use magic_tensor::{Rng64, Tensor};
//!
//! let mut store = ParamStore::new();
//! let mut rng = Rng64::new(0);
//! let layer = Linear::new(&mut store, "fc", 4, 2, &mut rng);
//!
//! let mut tape = Tape::new();
//! let binding = store.bind(&mut tape);
//! let x = tape.leaf(Tensor::ones([3, 4]), false);
//! let y = layer.forward(&mut tape, &binding, x);
//! assert_eq!(tape.value(y).shape().dims(), &[3, 2]);
//! ```

mod init;
mod layers;
mod optim;
mod param;
mod sched;

pub use init::{he_uniform, xavier_uniform};
pub use layers::{
    augment_adjacency, AdaptiveMaxPool2d, Conv1dLayer, Conv2dLayer, Dropout, GraphConv, Linear,
    SortPooling, WeightedVertices,
};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::{Binding, GradBuffer, ParamId, ParamStore};
pub use sched::ReduceLrOnPlateau;
