#![warn(missing_docs)]

//! The DGCNN malware classifier of the MAGIC paper (Section III).
//!
//! A [`Dgcnn`] stacks graph convolution layers (Eq. 1) over an ACFG's
//! attribute matrix, concatenates the per-layer outputs into `Z^{1:h}`,
//! reduces them to a fixed-size representation with one of three
//! [`PoolingHead`]s — SortPooling + Conv1D (the original DGCNN),
//! SortPooling + WeightedVertices (Section III-B) or adaptive max
//! pooling + Conv2D (Section III-C) — and classifies with a perceptron ending in
//! log-softmax, trained against the mean negative log-likelihood of
//! Eq. (5).
//!
//! # Example
//!
//! ```
//! use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead};
//! use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
//! use magic_tensor::Tensor;
//!
//! let mut g = DiGraph::new(3);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! let acfg = Acfg::new(g, Tensor::ones([3, NUM_ATTRIBUTES]));
//!
//! let config = DgcnnConfig::new(4, PoolingHead::sort_pool_weighted(8));
//! let model = Dgcnn::new(&config, 7);
//! let probs = model.predict(&GraphInput::from_acfg(&acfg));
//! assert_eq!(probs.len(), 4);
//! assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
//! ```

mod config;
mod dgcnn;
mod input;

pub use config::{DgcnnConfig, PoolingHead};
pub use dgcnn::{Dgcnn, Propagation};
pub use input::{GraphBatch, GraphInput};
