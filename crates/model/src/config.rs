//! Model configuration: the hyperparameters of Table II.

use magic_graph::NUM_ATTRIBUTES;

/// The readout architecture placed after the graph convolution stack.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolingHead {
    /// SortPooling followed by the original DGCNN Conv1D column:
    /// a kernel-`Σc_t`/stride-`Σc_t` Conv1D, 2-wide max pooling, then a
    /// second Conv1D of `kernel` width (Table II tunes 5 or 7) with the
    /// given channel pair (Table II: `(16, 32)`).
    SortPoolConv1d {
        /// Number of vertices retained by SortPooling.
        k: usize,
        /// `(first, second)` Conv1D channel counts.
        channels: (usize, usize),
        /// Kernel width of the second Conv1D.
        kernel: usize,
    },
    /// SortPooling followed by the WeightedVertices layer of Section
    /// III-B (the single-channel, kernel-`k` Conv1D that computes a
    /// weighted sum of vertex embeddings).
    SortPoolWeightedVertices {
        /// Number of vertices retained by SortPooling.
        k: usize,
    },
    /// The Section III-C alternative: a Conv2D over `Z^{1:h}` treated as a
    /// one-channel image, adaptive max pooling to a fixed grid, then a
    /// second Conv2D (the "multiple-Conv2D-layer network inspired by
    /// VGG").
    AdaptiveMaxPool {
        /// Output grid `(height, width)` of the AMP layer.
        grid: (usize, usize),
        /// Conv2D channel count (Table II tunes 16 or 32).
        channels: usize,
    },
}

impl PoolingHead {
    /// The original-DGCNN head with the paper's channel pair `(16, 32)`
    /// and kernel 5.
    pub fn sort_pool_conv1d(k: usize) -> Self {
        PoolingHead::SortPoolConv1d { k, channels: (16, 32), kernel: 5 }
    }

    /// The WeightedVertices head.
    pub fn sort_pool_weighted(k: usize) -> Self {
        PoolingHead::SortPoolWeightedVertices { k }
    }

    /// The adaptive-max-pooling head with a square grid and 16 channels.
    pub fn adaptive_max_pool(grid: usize) -> Self {
        PoolingHead::AdaptiveMaxPool { grid: (grid, grid), channels: 16 }
    }
}

/// Full DGCNN configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DgcnnConfig {
    /// Vertex attribute channels (11 for Table I ACFGs).
    pub input_channels: usize,
    /// Graph convolution layer widths; Table II tunes
    /// `(32,32,32,1)`, `(32,32,32,32)` and `(128,64,32,32)`.
    pub conv_sizes: Vec<usize>,
    /// The readout head.
    pub head: PoolingHead,
    /// Classifier MLP hidden width.
    pub hidden: usize,
    /// Number of malware families.
    pub num_classes: usize,
    /// Dropout rate before the final layer (Table II: 0.1 or 0.5).
    pub dropout: f32,
}

impl DgcnnConfig {
    /// A sensible default configuration for `num_classes` families: the
    /// `(32,32,32,32)` convolution stack of Table II with the given head.
    pub fn new(num_classes: usize, head: PoolingHead) -> Self {
        DgcnnConfig {
            input_channels: NUM_ATTRIBUTES,
            conv_sizes: vec![32, 32, 32, 32],
            head,
            hidden: 128,
            num_classes,
            dropout: 0.1,
        }
    }

    /// Total concatenated channel count `Σ c_t` of `Z^{1:h}`.
    pub fn concat_channels(&self) -> usize {
        self.conv_sizes.iter().sum()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot produce a well-formed model
    /// (empty conv stack, zero classes, a Conv1D head whose kernel cannot
    /// fit, or a dropout rate outside `[0, 1)`).
    pub fn validate(&self) {
        assert!(!self.conv_sizes.is_empty(), "need at least one graph conv layer");
        assert!(self.conv_sizes.iter().all(|&c| c > 0), "conv widths must be positive");
        assert!(self.num_classes >= 2, "need at least two classes");
        assert!(self.input_channels > 0, "need input channels");
        assert!((0.0..1.0).contains(&self.dropout), "dropout must be in [0, 1)");
        if let PoolingHead::SortPoolConv1d { k, kernel, channels } = &self.head {
            assert!(*kernel >= 1 && channels.0 > 0 && channels.1 > 0, "bad conv1d head");
            assert!(
                *k / 2 >= *kernel,
                "sortpool k={k} too small for conv1d kernel={kernel} after 2-pooling"
            );
        }
        if let PoolingHead::SortPoolWeightedVertices { k } = &self.head {
            assert!(*k > 0, "sortpool k must be positive");
        }
        if let PoolingHead::AdaptiveMaxPool { grid, channels } = &self.head {
            assert!(grid.0 > 0 && grid.1 > 0 && *channels > 0, "bad AMP head");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        DgcnnConfig::new(9, PoolingHead::adaptive_max_pool(4)).validate();
        DgcnnConfig::new(9, PoolingHead::sort_pool_weighted(16)).validate();
        DgcnnConfig::new(9, PoolingHead::sort_pool_conv1d(16)).validate();
    }

    #[test]
    fn concat_channels_sums_stack() {
        let mut c = DgcnnConfig::new(2, PoolingHead::adaptive_max_pool(3));
        c.conv_sizes = vec![128, 64, 32, 32];
        assert_eq!(c.concat_channels(), 256);
    }

    #[test]
    #[should_panic(expected = "too small for conv1d")]
    fn conv1d_head_requires_big_enough_k() {
        let mut c = DgcnnConfig::new(2, PoolingHead::sort_pool_conv1d(4));
        c.validate();
        c.head = PoolingHead::SortPoolConv1d { k: 4, channels: (16, 32), kernel: 5 };
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn rejects_single_class() {
        DgcnnConfig::new(1, PoolingHead::adaptive_max_pool(3)).validate();
    }
}
