//! The assembled DGCNN model.

use crate::config::{DgcnnConfig, PoolingHead};
use crate::input::GraphInput;
use magic_autograd::{Tape, Var};
use magic_nn::{
    AdaptiveMaxPool2d, Binding, Conv1dLayer, Conv2dLayer, Dropout, GraphConv, Linear, ParamStore,
    SortPooling, WeightedVertices,
};
use magic_tensor::Rng64;

/// How the Eq. (1) adjacency product is computed.
///
/// The CSR path is the production default: per-graph cost and memory
/// scale with edges (`O(nnz)`), and results are bitwise deterministic
/// run-to-run and across worker counts. The dense path multiplies the
/// materialized `n×n` `Â` and exists for the Fig. 2–3 worked-example
/// tests, dense↔sparse parity checks, and before/after measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Propagation {
    /// Fused `spmm_norm` over the CSR adjacency (default).
    #[default]
    SparseCsr,
    /// Dense `Â` matmul fallback.
    Dense,
}

/// Which head layers a model instantiated.
#[derive(Debug)]
enum HeadLayers {
    SortPoolConv1d {
        sort: SortPooling,
        conv1: Conv1dLayer,
        conv2: Conv1dLayer,
    },
    SortPoolWeighted {
        sort: SortPooling,
        weighted: WeightedVertices,
    },
    AdaptiveMaxPool {
        pre_conv: Conv2dLayer,
        pool: AdaptiveMaxPool2d,
        post_conv: Conv2dLayer,
    },
}

/// The end-to-end DGCNN malware classifier.
///
/// Owns its parameters in a [`ParamStore`]; the training loop binds the
/// store onto a fresh tape per sample, calls [`Dgcnn::forward`] and backs
/// the resulting log-probabilities through the tape. Inference uses
/// [`Dgcnn::predict`].
#[derive(Debug)]
pub struct Dgcnn {
    config: DgcnnConfig,
    store: ParamStore,
    graph_convs: Vec<GraphConv>,
    head: HeadLayers,
    fc1: Linear,
    fc2: Linear,
    dropout: Dropout,
    propagation: Propagation,
}

impl Dgcnn {
    /// Builds a model with freshly initialized parameters.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`DgcnnConfig::validate`].
    pub fn new(config: &DgcnnConfig, seed: u64) -> Self {
        config.validate();
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(seed);

        let mut graph_convs = Vec::with_capacity(config.conv_sizes.len());
        let mut in_ch = config.input_channels;
        for (i, &out_ch) in config.conv_sizes.iter().enumerate() {
            graph_convs.push(GraphConv::new(&mut store, &format!("gconv{i}"), in_ch, out_ch, &mut rng));
            in_ch = out_ch;
        }
        let concat = config.concat_channels();

        let (head, feature_len) = match &config.head {
            PoolingHead::SortPoolConv1d { k, channels, kernel } => {
                let conv1 = Conv1dLayer::new(&mut store, "head.conv1", 1, channels.0, concat, concat, &mut rng);
                let conv2 = Conv1dLayer::new(&mut store, "head.conv2", channels.0, channels.1, *kernel, 1, &mut rng);
                // conv1 over the flattened (1, k*concat) signal gives k
                // positions; maxpool 2 halves; conv2 slides kernel.
                let after_pool = k / 2;
                let after_conv2 = after_pool - kernel + 1;
                let head = HeadLayers::SortPoolConv1d { sort: SortPooling::new(*k), conv1, conv2 };
                (head, channels.1 * after_conv2)
            }
            PoolingHead::SortPoolWeightedVertices { k } => {
                let weighted = WeightedVertices::new(&mut store, "head.wv", *k, &mut rng);
                let head = HeadLayers::SortPoolWeighted { sort: SortPooling::new(*k), weighted };
                (head, concat)
            }
            PoolingHead::AdaptiveMaxPool { grid, channels } => {
                let pre_conv = Conv2dLayer::new(&mut store, "head.pre", 1, *channels, 3, 1, 1, &mut rng);
                let post_conv =
                    Conv2dLayer::new(&mut store, "head.post", *channels, *channels, 3, 1, 1, &mut rng);
                let head = HeadLayers::AdaptiveMaxPool {
                    pre_conv,
                    pool: AdaptiveMaxPool2d::new(grid.0, grid.1),
                    post_conv,
                };
                (head, channels * grid.0 * grid.1)
            }
        };

        let fc1 = Linear::new(&mut store, "fc1", feature_len, config.hidden, &mut rng);
        let fc2 = Linear::new(&mut store, "fc2", config.hidden, config.num_classes, &mut rng);

        Dgcnn {
            config: config.clone(),
            store,
            graph_convs,
            head,
            fc1,
            fc2,
            dropout: Dropout::new(config.dropout),
            propagation: Propagation::default(),
        }
    }

    /// Which adjacency propagation path [`Dgcnn::forward`] uses.
    pub fn propagation(&self) -> Propagation {
        self.propagation
    }

    /// Switches between the sparse CSR path (default) and the dense
    /// fallback. Both compute the same function; see [`Propagation`].
    pub fn set_propagation(&mut self, propagation: Propagation) {
        self.propagation = propagation;
    }

    /// The model configuration.
    pub fn config(&self) -> &DgcnnConfig {
        &self.config
    }

    /// The parameter store (read access, e.g. for checkpointing).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store (for the optimizer).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Total trainable weights.
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    /// Runs the forward pass on a tape, returning `(1, num_classes)`
    /// log-probabilities.
    ///
    /// `binding` must come from `self.store().bind(tape)`. `training`
    /// enables dropout, which draws from `rng`.
    ///
    /// Takes `&self`, so data-parallel training shares one model across
    /// worker threads, each with its own tape and RNG. For reproducible
    /// dropout independent of batch composition and scheduling, callers
    /// pass a per-sample stream from [`Rng64::for_sample`] rather than a
    /// shared generator (see the trainer's threading model).
    pub fn forward(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        input: &GraphInput,
        training: bool,
        rng: &mut Rng64,
    ) -> Var {
        // Graph convolution stack (Eq. 1) with per-layer outputs kept.
        let mut z = tape.leaf(input.attributes().clone(), false);
        let mut per_layer = Vec::with_capacity(self.graph_convs.len());
        match self.propagation {
            Propagation::SparseCsr => {
                for conv in &self.graph_convs {
                    z = conv.forward_sparse(
                        tape,
                        binding,
                        input.adj_hat(),
                        input.adj_hat_t(),
                        input.inv_degree_arc(),
                        z,
                    );
                    per_layer.push(z);
                }
            }
            Propagation::Dense => {
                let adj = tape.leaf(input.adj_hat_dense(), false);
                for conv in &self.graph_convs {
                    z = conv.forward(tape, binding, adj, input.inv_degree(), z);
                    per_layer.push(z);
                }
            }
        }
        let z_concat = tape.concat_cols(&per_layer);

        // Readout head.
        let features = match &self.head {
            HeadLayers::SortPoolConv1d { sort, conv1, conv2 } => {
                let z_sp = sort.forward(tape, z_concat); // (k, concat)
                let k = sort.k();
                let concat = self.config.concat_channels();
                let flat = tape.reshape(z_sp, [1, k * concat]);
                let c1 = conv1.forward(tape, binding, flat); // (ch0, k)
                let pooled = tape.max_pool1d(c1, 2); // (ch0, k/2)
                let c2 = conv2.forward(tape, binding, pooled); // (ch1, L)
                let len = tape.value(c2).len();
                tape.reshape(c2, [1, len])
            }
            HeadLayers::SortPoolWeighted { sort, weighted } => {
                let z_sp = sort.forward(tape, z_concat); // (k, concat)
                weighted.forward(tape, binding, z_sp) // (1, concat)
            }
            HeadLayers::AdaptiveMaxPool { pre_conv, pool, post_conv } => {
                let n = input.vertex_count();
                let concat = self.config.concat_channels();
                let image = tape.reshape(z_concat, [1, n, concat]);
                let c1 = pre_conv.forward(tape, binding, image); // (ch, n, concat)
                let pooled = pool.forward(tape, c1); // (ch, H, W)
                let c2 = post_conv.forward(tape, binding, pooled); // (ch, H, W)
                let len = tape.value(c2).len();
                tape.reshape(c2, [1, len])
            }
        };

        // Classifier perceptron.
        let h = self.fc1.forward(tape, binding, features);
        let h = tape.relu(h);
        let h = self.dropout.forward(tape, h, training, rng);
        let logits = self.fc2.forward(tape, binding, h);
        tape.log_softmax_rows(logits)
    }

    /// Class probabilities for one graph (inference mode).
    pub fn predict(&self, input: &GraphInput) -> Vec<f32> {
        self.predict_with(&mut Tape::new(), input)
    }

    /// Class probabilities for one graph, evaluated on a caller-supplied
    /// tape. Resets the tape first, so a warm training-lane tape can serve
    /// evaluation from its recycled workspace buffers instead of paying a
    /// fresh tape's worth of allocations per sample.
    pub fn predict_with(&self, tape: &mut Tape, input: &GraphInput) -> Vec<f32> {
        tape.reset();
        let binding = self.store.bind(tape);
        let mut rng = Rng64::new(0); // unused: dropout is off at inference
        let log_probs = self.forward(tape, &binding, input, false, &mut rng);
        tape.value(log_probs).map(f32::exp).into_vec()
    }

    /// Most probable class for one graph.
    pub fn predict_class(&self, input: &GraphInput) -> usize {
        let probs = self.predict(input);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
    use magic_nn::{Adam, Optimizer};
    use magic_tensor::Tensor;

    fn tiny_input(n: usize, seed: u64) -> GraphInput {
        let mut rng = Rng64::new(seed);
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        if n > 2 {
            g.add_edge(n - 1, rng.next_below(n - 1));
        }
        let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, 5.0, &mut rng);
        GraphInput::from_acfg(&Acfg::new(g, attrs))
    }

    fn all_heads() -> Vec<PoolingHead> {
        vec![
            PoolingHead::sort_pool_conv1d(12),
            PoolingHead::sort_pool_weighted(10),
            PoolingHead::adaptive_max_pool(3),
        ]
    }

    #[test]
    fn every_head_produces_normalized_probabilities() {
        for head in all_heads() {
            let config = DgcnnConfig::new(5, head.clone());
            let model = Dgcnn::new(&config, 1);
            for n in [2usize, 5, 30, 80] {
                let probs = model.predict(&tiny_input(n, n as u64));
                assert_eq!(probs.len(), 5);
                let total: f32 = probs.iter().sum();
                assert!((total - 1.0).abs() < 1e-3, "head {head:?}, n={n}: sum {total}");
                assert!(probs.iter().all(|p| p.is_finite() && *p >= 0.0));
            }
        }
    }

    #[test]
    fn graphs_smaller_than_k_still_classify() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(64));
        let model = Dgcnn::new(&config, 2);
        let probs = model.predict(&tiny_input(2, 9));
        assert_eq!(probs.len(), 3);
    }

    #[test]
    fn every_parameter_receives_gradient_via_some_input() {
        for head in all_heads() {
            let config = DgcnnConfig::new(3, head.clone());
            let mut model = Dgcnn::new(&config, 3);
            let input = tiny_input(30, 4);
            let mut rng = Rng64::new(5);

            let mut tape = Tape::new();
            let binding = model.store().bind(&mut tape);
            let lp = model.forward(&mut tape, &binding, &input, true, &mut rng);
            let loss = tape.nll_loss(lp, vec![1]);
            tape.backward(loss);
            model.store_mut().accumulate_grads(&tape, &binding);

            let grad_norm = model.store().grad_norm();
            assert!(grad_norm > 0.0, "head {head:?}: zero gradient");
            assert!(grad_norm.is_finite());
        }
    }

    #[test]
    fn training_reduces_loss_on_a_separable_toy_problem() {
        // Two "families": dense high-attribute graphs vs sparse low ones.
        let config = DgcnnConfig::new(2, PoolingHead::adaptive_max_pool(3));
        let mut model = Dgcnn::new(&config, 6);
        let mut opt = Adam::new(0.01, 0.0);
        let mut rng = Rng64::new(11);

        let make = |label: usize, seed: u64| {
            let mut r = Rng64::new(seed);
            let n = 10;
            let mut g = DiGraph::new(n);
            for i in 0..n - 1 {
                g.add_edge(i, i + 1);
            }
            let hi = if label == 1 { 8.0 } else { 1.0 };
            let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, hi, &mut r);
            (GraphInput::from_acfg(&Acfg::new(g, attrs)), label)
        };
        let data: Vec<_> = (0..16).map(|i| make(i % 2, 100 + i as u64)).collect();

        let epoch_loss = |model: &mut Dgcnn, opt: &mut Adam, rng: &mut Rng64, train: bool| {
            let mut total = 0.0;
            for (input, label) in &data {
                let mut tape = Tape::new();
                let binding = model.store().bind(&mut tape);
                let lp = model.forward(&mut tape, &binding, input, train, rng);
                let loss = tape.nll_loss(lp, vec![*label]);
                total += tape.value(loss).item();
                if train {
                    tape.backward(loss);
                    model.store_mut().accumulate_grads(&tape, &binding);
                }
            }
            if train {
                opt.step(model.store_mut(), data.len());
                model.store_mut().zero_grads();
            }
            total / data.len() as f32
        };

        let before = epoch_loss(&mut model, &mut opt, &mut rng, false);
        for _ in 0..15 {
            epoch_loss(&mut model, &mut opt, &mut rng, true);
        }
        let after = epoch_loss(&mut model, &mut opt, &mut rng, false);
        assert!(after < before * 0.7, "loss {before} -> {after}");
        // The model actually separates the two classes.
        let correct = data
            .iter()
            .filter(|(input, label)| model.predict_class(input) == *label)
            .count();
        assert!(correct >= 14, "{correct}/16 correct");
    }

    #[test]
    fn prediction_is_deterministic() {
        let config = DgcnnConfig::new(4, PoolingHead::sort_pool_weighted(8));
        let model = Dgcnn::new(&config, 8);
        let input = tiny_input(20, 3);
        assert_eq!(model.predict(&input), model.predict(&input));
    }

    #[test]
    fn models_with_different_seeds_differ() {
        let config = DgcnnConfig::new(4, PoolingHead::sort_pool_weighted(8));
        let a = Dgcnn::new(&config, 1);
        let b = Dgcnn::new(&config, 2);
        let input = tiny_input(20, 3);
        assert_ne!(a.predict(&input), b.predict(&input));
    }

    #[test]
    fn num_weights_is_substantial_for_paper_config() {
        let mut config = DgcnnConfig::new(9, PoolingHead::adaptive_max_pool(4));
        config.conv_sizes = vec![128, 64, 32, 32];
        let model = Dgcnn::new(&config, 0);
        assert!(model.num_weights() > 30_000, "{} weights", model.num_weights());
    }

    /// Data-parallel training shares one model across worker threads via
    /// `&Dgcnn`, so the model must stay Send + Sync.
    #[test]
    fn model_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Dgcnn>();
        assert_send_sync::<DgcnnConfig>();
        assert_send_sync::<GraphInput>();
    }

    /// Shared-model inference from multiple threads gives the same
    /// answer as single-threaded inference.
    #[test]
    fn concurrent_predictions_match_serial() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(8));
        let model = Dgcnn::new(&config, 6);
        let inputs: Vec<GraphInput> = (0..6).map(|i| tiny_input(12, i)).collect();
        let serial: Vec<Vec<f32>> = inputs.iter().map(|x| model.predict(x)).collect();
        let threaded: Vec<Vec<f32>> = std::thread::scope(|scope| {
            inputs
                .iter()
                .map(|x| scope.spawn(|| model.predict(x)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("prediction thread panicked"))
                .collect()
        });
        assert_eq!(serial, threaded);
    }
}
