//! The assembled DGCNN model.

use crate::config::{DgcnnConfig, PoolingHead};
use crate::input::{GraphBatch, GraphInput};
use magic_autograd::{Tape, Var};
use magic_nn::{
    AdaptiveMaxPool2d, Binding, Conv1dLayer, Conv2dLayer, Dropout, GraphConv, Linear, ParamStore,
    SortPooling, WeightedVertices,
};
use magic_tensor::Rng64;
use std::sync::Arc;

/// How the Eq. (1) adjacency product is computed.
///
/// The CSR path is the production default: per-graph cost and memory
/// scale with edges (`O(nnz)`), and results are bitwise deterministic
/// run-to-run and across worker counts. The dense path multiplies the
/// materialized `n×n` `Â` and exists for the Fig. 2–3 worked-example
/// tests, dense↔sparse parity checks, and before/after measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Propagation {
    /// Fused `spmm_norm` over the CSR adjacency (default).
    #[default]
    SparseCsr,
    /// Dense `Â` matmul fallback.
    Dense,
}

/// Which head layers a model instantiated.
#[derive(Debug)]
enum HeadLayers {
    SortPoolConv1d {
        sort: SortPooling,
        conv1: Conv1dLayer,
        conv2: Conv1dLayer,
    },
    SortPoolWeighted {
        sort: SortPooling,
        weighted: WeightedVertices,
    },
    AdaptiveMaxPool {
        pre_conv: Conv2dLayer,
        pool: AdaptiveMaxPool2d,
        post_conv: Conv2dLayer,
    },
}

/// The end-to-end DGCNN malware classifier.
///
/// Owns its parameters in a [`ParamStore`]; the training loop binds the
/// store onto a fresh tape per sample, calls [`Dgcnn::forward`] and backs
/// the resulting log-probabilities through the tape. Inference uses
/// [`Dgcnn::predict`].
#[derive(Debug)]
pub struct Dgcnn {
    config: DgcnnConfig,
    store: ParamStore,
    graph_convs: Vec<GraphConv>,
    head: HeadLayers,
    fc1: Linear,
    fc2: Linear,
    dropout: Dropout,
    propagation: Propagation,
}

impl Dgcnn {
    /// Builds a model with freshly initialized parameters.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`DgcnnConfig::validate`].
    pub fn new(config: &DgcnnConfig, seed: u64) -> Self {
        config.validate();
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(seed);

        let mut graph_convs = Vec::with_capacity(config.conv_sizes.len());
        let mut in_ch = config.input_channels;
        for (i, &out_ch) in config.conv_sizes.iter().enumerate() {
            graph_convs.push(GraphConv::new(&mut store, &format!("gconv{i}"), in_ch, out_ch, &mut rng));
            in_ch = out_ch;
        }
        let concat = config.concat_channels();

        let (head, feature_len) = match &config.head {
            PoolingHead::SortPoolConv1d { k, channels, kernel } => {
                let conv1 = Conv1dLayer::new(&mut store, "head.conv1", 1, channels.0, concat, concat, &mut rng);
                let conv2 = Conv1dLayer::new(&mut store, "head.conv2", channels.0, channels.1, *kernel, 1, &mut rng);
                // conv1 over the flattened (1, k*concat) signal gives k
                // positions; maxpool 2 halves; conv2 slides kernel.
                let after_pool = k / 2;
                let after_conv2 = after_pool - kernel + 1;
                let head = HeadLayers::SortPoolConv1d { sort: SortPooling::new(*k), conv1, conv2 };
                (head, channels.1 * after_conv2)
            }
            PoolingHead::SortPoolWeightedVertices { k } => {
                let weighted = WeightedVertices::new(&mut store, "head.wv", *k, &mut rng);
                let head = HeadLayers::SortPoolWeighted { sort: SortPooling::new(*k), weighted };
                (head, concat)
            }
            PoolingHead::AdaptiveMaxPool { grid, channels } => {
                let pre_conv = Conv2dLayer::new(&mut store, "head.pre", 1, *channels, 3, 1, 1, &mut rng);
                let post_conv =
                    Conv2dLayer::new(&mut store, "head.post", *channels, *channels, 3, 1, 1, &mut rng);
                let head = HeadLayers::AdaptiveMaxPool {
                    pre_conv,
                    pool: AdaptiveMaxPool2d::new(grid.0, grid.1),
                    post_conv,
                };
                (head, channels * grid.0 * grid.1)
            }
        };

        let fc1 = Linear::new(&mut store, "fc1", feature_len, config.hidden, &mut rng);
        let fc2 = Linear::new(&mut store, "fc2", config.hidden, config.num_classes, &mut rng);

        Dgcnn {
            config: config.clone(),
            store,
            graph_convs,
            head,
            fc1,
            fc2,
            dropout: Dropout::new(config.dropout),
            propagation: Propagation::default(),
        }
    }

    /// Which adjacency propagation path [`Dgcnn::forward`] uses.
    pub fn propagation(&self) -> Propagation {
        self.propagation
    }

    /// Switches between the sparse CSR path (default) and the dense
    /// fallback. Both compute the same function; see [`Propagation`].
    pub fn set_propagation(&mut self, propagation: Propagation) {
        self.propagation = propagation;
    }

    /// The model configuration.
    pub fn config(&self) -> &DgcnnConfig {
        &self.config
    }

    /// The parameter store (read access, e.g. for checkpointing).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store (for the optimizer).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Total trainable weights.
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    /// Runs the forward pass on a tape, returning `(1, num_classes)`
    /// log-probabilities.
    ///
    /// `binding` must come from `self.store().bind(tape)`. `training`
    /// enables dropout, which draws from `rng`.
    ///
    /// Takes `&self`, so data-parallel training shares one model across
    /// worker threads, each with its own tape and RNG. For reproducible
    /// dropout independent of batch composition and scheduling, callers
    /// pass a per-sample stream from [`Rng64::for_sample`] rather than a
    /// shared generator (see the trainer's threading model).
    pub fn forward(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        input: &GraphInput,
        training: bool,
        rng: &mut Rng64,
    ) -> Var {
        // Graph convolution stack (Eq. 1) with per-layer outputs kept.
        let mut z = tape.leaf(input.attributes().clone(), false);
        let mut per_layer = Vec::with_capacity(self.graph_convs.len());
        match self.propagation {
            Propagation::SparseCsr => {
                for conv in &self.graph_convs {
                    z = conv.forward_sparse(
                        tape,
                        binding,
                        input.adj_hat(),
                        input.adj_hat_t(),
                        input.inv_degree_arc(),
                        z,
                    );
                    per_layer.push(z);
                }
            }
            Propagation::Dense => {
                let adj = tape.leaf(input.adj_hat_dense(), false);
                for conv in &self.graph_convs {
                    z = conv.forward(tape, binding, adj, input.inv_degree(), z);
                    per_layer.push(z);
                }
            }
        }
        let z_concat = tape.concat_cols(&per_layer);

        // Readout head.
        let features = match &self.head {
            HeadLayers::SortPoolConv1d { sort, conv1, conv2 } => {
                let z_sp = sort.forward(tape, z_concat); // (k, concat)
                let k = sort.k();
                let concat = self.config.concat_channels();
                let flat = tape.reshape(z_sp, [1, k * concat]);
                let c1 = conv1.forward(tape, binding, flat); // (ch0, k)
                let pooled = tape.max_pool1d(c1, 2); // (ch0, k/2)
                let c2 = conv2.forward(tape, binding, pooled); // (ch1, L)
                let len = tape.value(c2).len();
                tape.reshape(c2, [1, len])
            }
            HeadLayers::SortPoolWeighted { sort, weighted } => {
                let z_sp = sort.forward(tape, z_concat); // (k, concat)
                weighted.forward(tape, binding, z_sp) // (1, concat)
            }
            HeadLayers::AdaptiveMaxPool { pre_conv, pool, post_conv } => {
                let n = input.vertex_count();
                let concat = self.config.concat_channels();
                let image = tape.reshape(z_concat, [1, n, concat]);
                let c1 = pre_conv.forward(tape, binding, image); // (ch, n, concat)
                let pooled = pool.forward(tape, c1); // (ch, H, W)
                let c2 = post_conv.forward(tape, binding, pooled); // (ch, H, W)
                let len = tape.value(c2).len();
                tape.reshape(c2, [1, len])
            }
        };

        // Classifier perceptron.
        let h = self.fc1.forward(tape, binding, features);
        let h = tape.relu(h);
        let h = self.dropout.forward(tape, h, training, rng);
        let logits = self.fc2.forward(tape, binding, h);
        tape.log_softmax_rows(logits)
    }

    /// Runs the forward pass for a whole mini-batch on one tape,
    /// returning `(batch, num_classes)` log-probabilities — row `j` holds
    /// sample `j`.
    ///
    /// Always propagates through the batch's block-diagonal CSR
    /// adjacency (the sparse path; [`Propagation::Dense`] has no batched
    /// equivalent). Every op either operates on disjoint per-sample
    /// segments or unstacks shared-parameter gradients per sample, so
    /// losses, predictions and accumulated gradients are bitwise
    /// identical to running [`Dgcnn::forward`] on each sample separately.
    ///
    /// `rngs` supplies one dropout stream per sample (from
    /// [`Rng64::for_sample`] in training), keeping mask bits independent
    /// of batch composition.
    pub fn forward_batched(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        batch: &GraphBatch,
        training: bool,
        rngs: &mut [Rng64],
    ) -> Var {
        assert_eq!(rngs.len(), batch.len(), "one dropout RNG stream per sample");
        let bounds = batch.bounds();
        let b = batch.len();
        let concat = self.config.concat_channels();

        // Graph convolution stack over the block-diagonal system.
        let mut z = tape.leaf(batch.attributes().clone(), false);
        let mut per_layer = Vec::with_capacity(self.graph_convs.len());
        for conv in &self.graph_convs {
            z = conv.forward_sparse_batched(
                tape,
                binding,
                batch.adj_hat(),
                batch.adj_hat_t(),
                batch.inv_degree_arc(),
                z,
                bounds,
            );
            per_layer.push(z);
        }
        let z_concat = tape.concat_cols(&per_layer); // (Σ n_j, concat)

        // Readout head, one fused op chain for the whole batch.
        let features = match &self.head {
            HeadLayers::SortPoolConv1d { sort, conv1, conv2 } => {
                let z_sp = sort.forward_batched(tape, z_concat, bounds); // (B·k, concat)
                let k = sort.k();
                // Row-major flatten of the row-stacked sort output is the
                // per-sample flattened signals laid end to end.
                let flat = tape.reshape(z_sp, [1, b * k * concat]);
                let c1 = conv1.forward_batched(tape, binding, flat, k * concat); // (ch0, B·k)
                let pooled = tape.max_pool1d_batched(c1, 2, k); // (ch0, B·(k/2))
                let c2 = conv2.forward_batched(tape, binding, pooled, k / 2); // (ch1, B·L)
                let seg = tape.value(c2).cols() / b;
                tape.unstack_columns(c2, seg) // (B, ch1·L)
            }
            HeadLayers::SortPoolWeighted { sort, weighted } => {
                let z_sp = sort.forward_batched(tape, z_concat, bounds); // (B·k, concat)
                weighted.forward_batched(tape, binding, z_sp) // (B, concat)
            }
            HeadLayers::AdaptiveMaxPool { pre_conv, pool, post_conv } => {
                // The row-major (Σ n_j, concat) buffer *is* the
                // column-stacked (1, Σ n_j·concat) image batch.
                let dims: Arc<Vec<(usize, usize)>> =
                    Arc::new(bounds.windows(2).map(|w| (w[1] - w[0], concat)).collect());
                let image = tape.reshape(z_concat, [1, batch.total_vertices() * concat]);
                // 3×3 stride-1 pad-1 preserves each sample's extent.
                let c1 = pre_conv.forward_batched(tape, binding, image, Arc::clone(&dims));
                let pooled = pool.forward_batched(tape, c1, &dims); // (ch, B·gh·gw)
                let grid = Arc::new(vec![(pool.out_h(), pool.out_w()); b]);
                let c2 = post_conv.forward_batched(tape, binding, pooled, grid);
                tape.unstack_columns(c2, pool.out_h() * pool.out_w()) // (B, ch·gh·gw)
            }
        };

        // Classifier perceptron: row-wise ops are already batch-safe.
        let h = self.fc1.forward(tape, binding, features);
        let h = tape.relu(h);
        let h = self.dropout.forward_rows(tape, h, training, rngs);
        let logits = self.fc2.forward(tape, binding, h);
        tape.log_softmax_rows(logits)
    }

    /// Class probabilities for one graph (inference mode).
    pub fn predict(&self, input: &GraphInput) -> Vec<f32> {
        self.predict_with(&mut Tape::new(), input)
    }

    /// Class probabilities for every graph in a batch, evaluated in one
    /// fused forward pass on a caller-supplied (reset) tape. Bitwise
    /// identical to calling [`Dgcnn::predict`] per sample.
    pub fn predict_batch_with(&self, tape: &mut Tape, batch: &GraphBatch) -> Vec<Vec<f32>> {
        tape.reset();
        let binding = self.store.bind(tape);
        let mut rngs = vec![Rng64::new(0); batch.len()]; // unused: dropout off
        let lp = self.forward_batched(tape, &binding, batch, false, &mut rngs);
        let v = tape.value(lp);
        (0..batch.len()).map(|i| v.row(i).iter().map(|&x| x.exp()).collect()).collect()
    }

    /// Fused batch inference over graphs in arbitrary arrival order —
    /// the shared entry point for online batching (`magic serve`) and
    /// offline batch scoring.
    ///
    /// Sorts the inputs by vertex count (largest first, stable) before
    /// assembling the block-diagonal [`GraphBatch`], so the fused batch
    /// layout depends only on the *set* of graphs, not on the order they
    /// arrived in, and the first warm-up batch touches the pool's
    /// largest size classes early. Results come back in **input order**
    /// and are bitwise identical to calling [`Dgcnn::predict`] on each
    /// graph alone (the per-sample-parity invariant of the batched
    /// forward makes the sort order unobservable in the outputs).
    pub fn predict_batch_sorted(
        &self,
        tape: &mut Tape,
        inputs: &[&GraphInput],
    ) -> Vec<Vec<f32>> {
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(inputs[i].vertex_count()));
        let sorted: Vec<&GraphInput> = order.iter().map(|&i| inputs[i]).collect();
        let batch = GraphBatch::new(&sorted);
        let probs = self.predict_batch_with(tape, &batch);
        let mut out = vec![Vec::new(); inputs.len()];
        for (slot, row) in probs.into_iter().enumerate() {
            out[order[slot]] = row;
        }
        out
    }

    /// Class probabilities for one graph, evaluated on a caller-supplied
    /// tape. Resets the tape first, so a warm training-lane tape can serve
    /// evaluation from its recycled workspace buffers instead of paying a
    /// fresh tape's worth of allocations per sample.
    pub fn predict_with(&self, tape: &mut Tape, input: &GraphInput) -> Vec<f32> {
        tape.reset();
        let binding = self.store.bind(tape);
        let mut rng = Rng64::new(0); // unused: dropout is off at inference
        let log_probs = self.forward(tape, &binding, input, false, &mut rng);
        tape.value(log_probs).map(f32::exp).into_vec()
    }

    /// Most probable class for one graph.
    pub fn predict_class(&self, input: &GraphInput) -> usize {
        let probs = self.predict(input);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
    use magic_nn::{Adam, Optimizer};
    use magic_tensor::Tensor;

    fn tiny_input(n: usize, seed: u64) -> GraphInput {
        let mut rng = Rng64::new(seed);
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        if n > 2 {
            g.add_edge(n - 1, rng.next_below(n - 1));
        }
        let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, 5.0, &mut rng);
        GraphInput::from_acfg(&Acfg::new(g, attrs))
    }

    fn all_heads() -> Vec<PoolingHead> {
        vec![
            PoolingHead::sort_pool_conv1d(12),
            PoolingHead::sort_pool_weighted(10),
            PoolingHead::adaptive_max_pool(3),
        ]
    }

    #[test]
    fn every_head_produces_normalized_probabilities() {
        for head in all_heads() {
            let config = DgcnnConfig::new(5, head.clone());
            let model = Dgcnn::new(&config, 1);
            for n in [2usize, 5, 30, 80] {
                let probs = model.predict(&tiny_input(n, n as u64));
                assert_eq!(probs.len(), 5);
                let total: f32 = probs.iter().sum();
                assert!((total - 1.0).abs() < 1e-3, "head {head:?}, n={n}: sum {total}");
                assert!(probs.iter().all(|p| p.is_finite() && *p >= 0.0));
            }
        }
    }

    #[test]
    fn graphs_smaller_than_k_still_classify() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(64));
        let model = Dgcnn::new(&config, 2);
        let probs = model.predict(&tiny_input(2, 9));
        assert_eq!(probs.len(), 3);
    }

    #[test]
    fn every_parameter_receives_gradient_via_some_input() {
        for head in all_heads() {
            let config = DgcnnConfig::new(3, head.clone());
            let mut model = Dgcnn::new(&config, 3);
            let input = tiny_input(30, 4);
            let mut rng = Rng64::new(5);

            let mut tape = Tape::new();
            let binding = model.store().bind(&mut tape);
            let lp = model.forward(&mut tape, &binding, &input, true, &mut rng);
            let loss = tape.nll_loss(lp, vec![1]);
            tape.backward(loss);
            model.store_mut().accumulate_grads(&tape, &binding);

            let grad_norm = model.store().grad_norm();
            assert!(grad_norm > 0.0, "head {head:?}: zero gradient");
            assert!(grad_norm.is_finite());
        }
    }

    #[test]
    fn training_reduces_loss_on_a_separable_toy_problem() {
        // Two "families": dense high-attribute graphs vs sparse low ones.
        let config = DgcnnConfig::new(2, PoolingHead::adaptive_max_pool(3));
        let mut model = Dgcnn::new(&config, 6);
        let mut opt = Adam::new(0.01, 0.0);
        let mut rng = Rng64::new(11);

        let make = |label: usize, seed: u64| {
            let mut r = Rng64::new(seed);
            let n = 10;
            let mut g = DiGraph::new(n);
            for i in 0..n - 1 {
                g.add_edge(i, i + 1);
            }
            let hi = if label == 1 { 8.0 } else { 1.0 };
            let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, hi, &mut r);
            (GraphInput::from_acfg(&Acfg::new(g, attrs)), label)
        };
        let data: Vec<_> = (0..16).map(|i| make(i % 2, 100 + i as u64)).collect();

        let epoch_loss = |model: &mut Dgcnn, opt: &mut Adam, rng: &mut Rng64, train: bool| {
            let mut total = 0.0;
            for (input, label) in &data {
                let mut tape = Tape::new();
                let binding = model.store().bind(&mut tape);
                let lp = model.forward(&mut tape, &binding, input, train, rng);
                let loss = tape.nll_loss(lp, vec![*label]);
                total += tape.value(loss).item();
                if train {
                    tape.backward(loss);
                    model.store_mut().accumulate_grads(&tape, &binding);
                }
            }
            if train {
                opt.step(model.store_mut(), data.len());
                model.store_mut().zero_grads();
            }
            total / data.len() as f32
        };

        let before = epoch_loss(&mut model, &mut opt, &mut rng, false);
        for _ in 0..15 {
            epoch_loss(&mut model, &mut opt, &mut rng, true);
        }
        let after = epoch_loss(&mut model, &mut opt, &mut rng, false);
        assert!(after < before * 0.7, "loss {before} -> {after}");
        // The model actually separates the two classes.
        let correct = data
            .iter()
            .filter(|(input, label)| model.predict_class(input) == *label)
            .count();
        assert!(correct >= 14, "{correct}/16 correct");
    }

    #[test]
    fn prediction_is_deterministic() {
        let config = DgcnnConfig::new(4, PoolingHead::sort_pool_weighted(8));
        let model = Dgcnn::new(&config, 8);
        let input = tiny_input(20, 3);
        assert_eq!(model.predict(&input), model.predict(&input));
    }

    #[test]
    fn models_with_different_seeds_differ() {
        let config = DgcnnConfig::new(4, PoolingHead::sort_pool_weighted(8));
        let a = Dgcnn::new(&config, 1);
        let b = Dgcnn::new(&config, 2);
        let input = tiny_input(20, 3);
        assert_ne!(a.predict(&input), b.predict(&input));
    }

    #[test]
    fn num_weights_is_substantial_for_paper_config() {
        let mut config = DgcnnConfig::new(9, PoolingHead::adaptive_max_pool(4));
        config.conv_sizes = vec![128, 64, 32, 32];
        let model = Dgcnn::new(&config, 0);
        assert!(model.num_weights() > 30_000, "{} weights", model.num_weights());
    }

    /// Data-parallel training shares one model across worker threads via
    /// `&Dgcnn`, so the model must stay Send + Sync.
    #[test]
    fn model_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Dgcnn>();
        assert_send_sync::<DgcnnConfig>();
        assert_send_sync::<GraphInput>();
    }

    /// Accumulated gradients of every parameter, in registration order.
    fn grad_snapshot(store: &ParamStore) -> Vec<Vec<f32>> {
        store
            .iter()
            .map(|(name, _)| store.grad(store.find(name).unwrap()).as_slice().to_vec())
            .collect()
    }

    /// The batched forward must be bitwise identical to per-sample
    /// execution — losses, log-probabilities, and every accumulated
    /// parameter gradient — for all three heads, with dropout active.
    #[test]
    fn batched_forward_is_bitwise_identical_to_per_sample() {
        for head in all_heads() {
            let mut config = DgcnnConfig::new(4, head.clone());
            config.dropout = 0.5;
            let mut model = Dgcnn::new(&config, 13);
            let inputs: Vec<GraphInput> =
                (0..4).map(|i| tiny_input(6 + 7 * i, 40 + i as u64)).collect();
            let labels = [0usize, 3, 1, 2];

            // Per-sample: one tape per sample, gradients accumulated in
            // sample order (the per-sample trainer's reduce chain).
            let mut per_losses = Vec::new();
            let mut per_lp = Vec::new();
            for (i, input) in inputs.iter().enumerate() {
                let mut rng = Rng64::for_sample(99, 0, i as u64);
                let mut tape = Tape::new();
                let binding = model.store().bind(&mut tape);
                let lp = model.forward(&mut tape, &binding, input, true, &mut rng);
                let loss = tape.nll_loss(lp, vec![labels[i]]);
                per_lp.push(tape.value(lp).as_slice().to_vec());
                per_losses.push(tape.value(loss).item());
                tape.backward(loss);
                model.store_mut().accumulate_grads(&tape, &binding);
            }
            let per_grads = grad_snapshot(model.store());
            model.store_mut().zero_grads();

            // Batched: one tape, one op chain, same RNG streams.
            let refs: Vec<&GraphInput> = inputs.iter().collect();
            let batch = GraphBatch::new(&refs);
            let mut rngs: Vec<Rng64> =
                (0..4).map(|i| Rng64::for_sample(99, 0, i as u64)).collect();
            let mut tape = Tape::new();
            let binding = model.store().bind(&mut tape);
            let lp = model.forward_batched(&mut tape, &binding, &batch, true, &mut rngs);
            let losses = tape.nll_loss_rows(lp, labels.to_vec());
            let total = tape.sum(losses);
            tape.backward(total);
            model.store_mut().accumulate_grads(&tape, &binding);
            let bat_grads = grad_snapshot(model.store());
            model.store_mut().zero_grads();

            for i in 0..inputs.len() {
                assert_eq!(
                    tape.value(lp).row(i),
                    per_lp[i].as_slice(),
                    "head {head:?}: log-probs of sample {i}"
                );
                assert_eq!(
                    tape.value(losses).get2(i, 0),
                    per_losses[i],
                    "head {head:?}: loss of sample {i}"
                );
            }
            assert_eq!(bat_grads, per_grads, "head {head:?}: gradient mismatch");
        }
    }

    /// Fused batch inference returns exactly the per-sample predictions.
    #[test]
    fn predict_batch_matches_predict() {
        for head in all_heads() {
            let config = DgcnnConfig::new(5, head.clone());
            let model = Dgcnn::new(&config, 17);
            let inputs: Vec<GraphInput> = (0..3).map(|i| tiny_input(10 + 5 * i, i as u64)).collect();
            let refs: Vec<&GraphInput> = inputs.iter().collect();
            let batch = GraphBatch::new(&refs);
            let batched = model.predict_batch_with(&mut Tape::new(), &batch);
            for (input, got) in inputs.iter().zip(&batched) {
                assert_eq!(got, &model.predict(input), "head {head:?}");
            }
        }
    }

    /// The sorted batch entry returns input-order results that are
    /// bitwise equal to per-sample prediction, for any arrival order.
    #[test]
    fn predict_batch_sorted_preserves_input_order_bitwise() {
        let config = DgcnnConfig::new(4, PoolingHead::adaptive_max_pool(3));
        let model = Dgcnn::new(&config, 21);
        // Deliberately unsorted sizes, with a duplicate size to exercise
        // the stable tie-break.
        let inputs: Vec<GraphInput> =
            [9usize, 25, 4, 25, 14].iter().enumerate().map(|(i, &n)| tiny_input(n, i as u64)).collect();
        let refs: Vec<&GraphInput> = inputs.iter().collect();
        let mut tape = Tape::new();
        let sorted = model.predict_batch_sorted(&mut tape, &refs);
        for (input, got) in inputs.iter().zip(&sorted) {
            assert_eq!(got, &model.predict(input));
        }
        // A different arrival order of the same set gives the same
        // per-input answers.
        let rev: Vec<&GraphInput> = inputs.iter().rev().collect();
        let rev_out = model.predict_batch_sorted(&mut tape, &rev);
        for (a, b) in sorted.iter().zip(rev_out.iter().rev()) {
            assert_eq!(a, b);
        }
    }

    /// Shared-model inference from multiple threads gives the same
    /// answer as single-threaded inference.
    #[test]
    fn concurrent_predictions_match_serial() {
        let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(8));
        let model = Dgcnn::new(&config, 6);
        let inputs: Vec<GraphInput> = (0..6).map(|i| tiny_input(12, i)).collect();
        let serial: Vec<Vec<f32>> = inputs.iter().map(|x| model.predict(x)).collect();
        let threaded: Vec<Vec<f32>> = std::thread::scope(|scope| {
            inputs
                .iter()
                .map(|x| scope.spawn(|| model.predict(x)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("prediction thread panicked"))
                .collect()
        });
        assert_eq!(serial, threaded);
    }
}
