//! Pre-processed model input: the per-graph constant matrices of Eq. (1).

use magic_graph::Acfg;
use magic_tensor::{CsrMatrix, Tensor};
use std::sync::Arc;

/// A graph prepared for DGCNN consumption: the augmented adjacency
/// `Â = A + I` in CSR form, its precomputed transpose `Âᵀ` (the backward
/// pass is the transpose-CSR product), the inverse augmented degrees
/// `D̂⁻¹` and the (log-scaled) attribute matrix `X`.
///
/// These are constants of the forward pass, computed once per sample and
/// reused across epochs. The adjacency is stored sparsely — `O(n + e)`
/// rather than `O(n²)` — and shared via `Arc` so every per-sample tape
/// references the same buffers instead of cloning them.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphInput {
    adj_hat: Arc<CsrMatrix>,
    adj_hat_t: Arc<CsrMatrix>,
    inv_degree: Arc<Vec<f32>>,
    attributes: Tensor,
}

impl GraphInput {
    fn from_csr(adj_hat: CsrMatrix, inv_degree: Vec<f32>, attributes: Tensor) -> Self {
        assert!(adj_hat.rows() > 0, "cannot embed an empty graph");
        assert_eq!(adj_hat.rows(), attributes.rows(), "vertex count mismatch");
        let adj_hat_t = adj_hat.transpose();
        GraphInput {
            adj_hat: Arc::new(adj_hat),
            adj_hat_t: Arc::new(adj_hat_t),
            inv_degree: Arc::new(inv_degree),
            attributes,
        }
    }

    /// Prepares an ACFG: builds `Â` directly from the graph's edge lists
    /// (the dense `n×n` is never materialized) and log-scales the raw
    /// attribute counts (heavy-tailed counts destabilize training
    /// otherwise).
    ///
    /// # Panics
    ///
    /// Panics on an empty graph.
    pub fn from_acfg(acfg: &Acfg) -> Self {
        assert!(acfg.vertex_count() > 0, "cannot embed an empty graph");
        let (adj_hat, inv_degree) = acfg.graph().augmented_csr();
        GraphInput::from_csr(adj_hat, inv_degree, acfg.log_scaled_attributes())
    }

    /// Builds an input from raw parts (mainly for tests and tooling).
    /// The dense adjacency is augmented and immediately compressed.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree or the graph is empty.
    pub fn from_parts(adjacency: Tensor, attributes: Tensor) -> Self {
        assert_eq!(adjacency.rows(), attributes.rows(), "vertex count mismatch");
        let n = adjacency.rows();
        assert_eq!(n, adjacency.cols(), "adjacency matrix must be square");
        let a_hat = CsrMatrix::from_dense(&adjacency.add(&Tensor::eye(n)));
        let inv_degree = (0..n)
            .map(|i| {
                let (s, e) = (a_hat.row_offsets()[i], a_hat.row_offsets()[i + 1]);
                let d: f32 = a_hat.values()[s..e].iter().sum();
                if d > 0.0 { 1.0 / d } else { 0.0 }
            })
            .collect();
        GraphInput::from_csr(a_hat, inv_degree, attributes)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj_hat.rows()
    }

    /// The augmented adjacency `Â` in CSR form.
    pub fn adj_hat(&self) -> &Arc<CsrMatrix> {
        &self.adj_hat
    }

    /// The precomputed transpose `Âᵀ`, consumed by the backward pass.
    pub fn adj_hat_t(&self) -> &Arc<CsrMatrix> {
        &self.adj_hat_t
    }

    /// The inverse augmented degree diagonal.
    pub fn inv_degree(&self) -> &[f32] {
        &self.inv_degree
    }

    /// The inverse degrees behind their shared handle, for tape ops that
    /// keep a reference.
    pub fn inv_degree_arc(&self) -> &Arc<Vec<f32>> {
        &self.inv_degree
    }

    /// Materializes the dense `Â` — the `O(n²)` fallback used only by
    /// the worked-example tests and the dense propagation mode.
    pub fn adj_hat_dense(&self) -> Tensor {
        self.adj_hat.to_dense()
    }

    /// The attribute matrix fed to the first convolution.
    pub fn attributes(&self) -> &Tensor {
        &self.attributes
    }
}

/// A mini-batch of graphs fused into one block-diagonal system.
///
/// The per-sample adjacencies become one block-diagonal CSR matrix, the
/// attribute matrices are row-stacked and `bounds` records where each
/// sample's vertex rows start and end (`bounds[j]..bounds[j+1]`). One
/// fused `spmm_norm` over this matrix propagates the whole batch: a
/// block-diagonal row holds exactly the nonzeros of the corresponding
/// per-sample row, so the batched product is bitwise identical to the
/// per-sample products laid side by side.
///
/// The transpose is assembled as the block diagonal of the per-sample
/// transposes (equal to the transpose of the block diagonal), so the
/// backward pass walks each sample's `Âᵀ` rows in exactly the per-sample
/// order.
#[derive(Debug, Clone)]
pub struct GraphBatch {
    adj_hat: Arc<CsrMatrix>,
    adj_hat_t: Arc<CsrMatrix>,
    inv_degree: Arc<Vec<f32>>,
    attributes: Tensor,
    bounds: Arc<Vec<usize>>,
}

impl GraphBatch {
    /// Fuses `inputs` into one block-diagonal batch.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn new(inputs: &[&GraphInput]) -> Self {
        assert!(!inputs.is_empty(), "cannot batch zero graphs");
        let blocks: Vec<&CsrMatrix> = inputs.iter().map(|i| &**i.adj_hat()).collect();
        let blocks_t: Vec<&CsrMatrix> = inputs.iter().map(|i| &**i.adj_hat_t()).collect();
        let adj_hat = CsrMatrix::block_diagonal(&blocks);
        let adj_hat_t = CsrMatrix::block_diagonal(&blocks_t);
        let mut inv_degree = Vec::with_capacity(adj_hat.rows());
        let mut bounds = Vec::with_capacity(inputs.len() + 1);
        bounds.push(0);
        for input in inputs {
            inv_degree.extend_from_slice(input.inv_degree());
            bounds.push(bounds.last().unwrap() + input.vertex_count());
        }
        let attrs: Vec<&Tensor> = inputs.iter().map(|i| i.attributes()).collect();
        GraphBatch {
            adj_hat: Arc::new(adj_hat),
            adj_hat_t: Arc::new(adj_hat_t),
            inv_degree: Arc::new(inv_degree),
            attributes: Tensor::concat_rows(&attrs),
            bounds: Arc::new(bounds),
        }
    }

    /// Number of graphs in the batch.
    pub fn len(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Whether the batch is empty (never true for a constructed batch).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total vertex count across the batch.
    pub fn total_vertices(&self) -> usize {
        *self.bounds.last().unwrap()
    }

    /// Vertex count of sample `j`.
    pub fn vertex_count(&self, j: usize) -> usize {
        self.bounds[j + 1] - self.bounds[j]
    }

    /// The block-diagonal augmented adjacency.
    pub fn adj_hat(&self) -> &Arc<CsrMatrix> {
        &self.adj_hat
    }

    /// Its precomputed transpose.
    pub fn adj_hat_t(&self) -> &Arc<CsrMatrix> {
        &self.adj_hat_t
    }

    /// The concatenated inverse degree diagonal.
    pub fn inv_degree_arc(&self) -> &Arc<Vec<f32>> {
        &self.inv_degree
    }

    /// The row-stacked attribute matrix `(Σ n_j, c_in)`.
    pub fn attributes(&self) -> &Tensor {
        &self.attributes
    }

    /// Per-sample vertex row bounds: sample `j` owns rows
    /// `bounds()[j]..bounds()[j+1]`.
    pub fn bounds(&self) -> &Arc<Vec<usize>> {
        &self.bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};

    #[test]
    fn from_acfg_augments_and_scales() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        let mut attrs = Tensor::zeros([2, NUM_ATTRIBUTES]);
        attrs.set2(0, 8, (std::f32::consts::E - 1.0) * 1.0); // ln(1+x) = 1
        let acfg = Acfg::new(g, attrs);
        let input = GraphInput::from_acfg(&acfg);
        assert_eq!(input.vertex_count(), 2);
        // Â has self loops, stored sparsely: 1 edge + 2 loops.
        assert_eq!(input.adj_hat().nnz(), 3);
        let dense = input.adj_hat_dense();
        assert_eq!(dense.get2(0, 0), 1.0);
        assert_eq!(dense.get2(0, 1), 1.0);
        assert_eq!(input.inv_degree(), &[0.5, 1.0]);
        assert!((input.attributes().get2(0, 8) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn transpose_is_precomputed_consistently() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let acfg = Acfg::new(g, Tensor::zeros([3, NUM_ATTRIBUTES]));
        let input = GraphInput::from_acfg(&acfg);
        assert_eq!(
            input.adj_hat_t().to_dense(),
            input.adj_hat_dense().transpose()
        );
    }

    #[test]
    fn from_parts_matches_from_acfg() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        let attrs = Tensor::ones([3, NUM_ATTRIBUTES]);
        let via_acfg = GraphInput::from_acfg(&Acfg::new(g.clone(), attrs.clone()));

        let mut adjacency = Tensor::zeros([3, 3]);
        for (u, v) in g.edges() {
            adjacency.set2(u, v, 1.0);
        }
        let via_parts = GraphInput::from_parts(adjacency, via_acfg.attributes().clone());
        assert_eq!(via_acfg.adj_hat(), via_parts.adj_hat());
        assert_eq!(via_acfg.inv_degree(), via_parts.inv_degree());
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn rejects_empty_graph() {
        let acfg = Acfg::new(DiGraph::new(0), Tensor::zeros([0, NUM_ATTRIBUTES]));
        GraphInput::from_acfg(&acfg);
    }

    #[test]
    fn batch_stacks_blocks_and_tracks_bounds() {
        let mut g1 = DiGraph::new(2);
        g1.add_edge(0, 1);
        let mut g2 = DiGraph::new(3);
        g2.add_edge(0, 2);
        g2.add_edge(1, 2);
        let a = GraphInput::from_acfg(&Acfg::new(g1, Tensor::ones([2, NUM_ATTRIBUTES])));
        let b = GraphInput::from_acfg(&Acfg::new(g2, Tensor::zeros([3, NUM_ATTRIBUTES])));
        let batch = GraphBatch::new(&[&a, &b]);

        assert_eq!(batch.len(), 2);
        assert_eq!(batch.total_vertices(), 5);
        assert_eq!(batch.bounds().as_slice(), &[0, 2, 5]);
        assert_eq!(batch.vertex_count(1), 3);
        assert_eq!(batch.adj_hat().nnz(), a.adj_hat().nnz() + b.adj_hat().nnz());
        // The fused transpose is the transpose of the fused matrix.
        assert_eq!(batch.adj_hat_t().to_dense(), batch.adj_hat().to_dense().transpose());
        // Inverse degrees and attributes are the per-sample values stacked.
        assert_eq!(&batch.inv_degree_arc()[..2], a.inv_degree());
        assert_eq!(&batch.inv_degree_arc()[2..], b.inv_degree());
        assert_eq!(batch.attributes().row(0), a.attributes().row(0));
        assert_eq!(batch.attributes().row(4), b.attributes().row(2));
    }

    #[test]
    #[should_panic(expected = "zero graphs")]
    fn rejects_empty_batch() {
        GraphBatch::new(&[]);
    }
}
