//! Pre-processed model input: the per-graph constant tensors of Eq. (1).

use magic_graph::Acfg;
use magic_nn::augment_adjacency;
use magic_tensor::Tensor;

/// A graph prepared for DGCNN consumption: the augmented adjacency
/// `Â = A + I`, the inverse augmented degrees `D̂⁻¹` and the (log-scaled)
/// attribute matrix `X`.
///
/// These are constants of the forward pass, computed once per sample and
/// reused across epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphInput {
    adj_hat: Tensor,
    inv_degree: Vec<f32>,
    attributes: Tensor,
}

impl GraphInput {
    /// Prepares an ACFG: augments the adjacency and log-scales the raw
    /// attribute counts (heavy-tailed counts destabilize training
    /// otherwise).
    ///
    /// # Panics
    ///
    /// Panics on an empty graph.
    pub fn from_acfg(acfg: &Acfg) -> Self {
        assert!(acfg.vertex_count() > 0, "cannot embed an empty graph");
        let (adj_hat, inv_degree) = augment_adjacency(&acfg.adjacency_tensor());
        GraphInput {
            adj_hat,
            inv_degree,
            attributes: acfg.log_scaled_attributes(),
        }
    }

    /// Builds an input from raw parts (mainly for tests and tooling).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn from_parts(adjacency: Tensor, attributes: Tensor) -> Self {
        assert_eq!(adjacency.rows(), attributes.rows(), "vertex count mismatch");
        let (adj_hat, inv_degree) = augment_adjacency(&adjacency);
        GraphInput { adj_hat, inv_degree, attributes }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj_hat.rows()
    }

    /// The augmented adjacency matrix `Â`.
    pub fn adj_hat(&self) -> &Tensor {
        &self.adj_hat
    }

    /// The inverse augmented degree diagonal.
    pub fn inv_degree(&self) -> &[f32] {
        &self.inv_degree
    }

    /// The attribute matrix fed to the first convolution.
    pub fn attributes(&self) -> &Tensor {
        &self.attributes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};

    #[test]
    fn from_acfg_augments_and_scales() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        let mut attrs = Tensor::zeros([2, NUM_ATTRIBUTES]);
        attrs.set2(0, 8, (std::f32::consts::E - 1.0) * 1.0); // ln(1+x) = 1
        let acfg = Acfg::new(g, attrs);
        let input = GraphInput::from_acfg(&acfg);
        assert_eq!(input.vertex_count(), 2);
        // Â has self loops.
        assert_eq!(input.adj_hat().get2(0, 0), 1.0);
        assert_eq!(input.adj_hat().get2(0, 1), 1.0);
        assert_eq!(input.inv_degree(), &[0.5, 1.0]);
        assert!((input.attributes().get2(0, 8) - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn rejects_empty_graph() {
        let acfg = Acfg::new(DiGraph::new(0), Tensor::zeros([0, NUM_ATTRIBUTES]));
        GraphInput::from_acfg(&acfg);
    }
}
