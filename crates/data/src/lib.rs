#![warn(missing_docs)]

//! Dataset containers and cross-validation splitters for the MAGIC
//! reproduction.
//!
//! The paper evaluates with stratified five-fold cross-validation
//! (Section V-B): "the dataset is splitted into five equal-size subsets
//! ... the training process never sees the testing samples". This crate
//! provides the labeled dataset container, deterministic stratified
//! K-fold splitting, and mini-batch iteration — plus the `magic-acfg/1`
//! sharded binary ACFG cache ([`cache`]) and its streaming readers
//! ([`stream`]) that let training and serving start from pre-extracted
//! graphs instead of re-running listing → CFG → ACFG extraction.
//!
//! # Example
//!
//! ```
//! use magic_data::Dataset;
//!
//! let ds = Dataset::new(
//!     vec!["a", "b", "c", "d"],
//!     vec![0, 1, 0, 1],
//!     vec!["FamA".into(), "FamB".into()],
//! );
//! let folds = ds.stratified_kfold(2, 99);
//! assert_eq!(folds.len(), 2);
//! ```

pub mod cache;
mod dataset;
mod split;
pub mod stream;

pub use cache::{
    cache_fingerprint, decode_record, encode_record, write_shard, CacheError, CacheManifest,
    ShardMeta, ShardReader, ShardRecord, CACHE_SCHEMA_NAME, CACHE_VERSION,
};
pub use dataset::Dataset;
pub use split::{batches, stratified_kfold, Fold};
pub use stream::{DecodedShard, ShardStream, StreamedCorpus};
