//! Streaming readers over a `magic-acfg/1` cache directory.
//!
//! Two granularities:
//!
//! * [`ShardStream`] — sequential corpus loading with double-buffering:
//!   a background thread reads + decodes shard `k+1` while the consumer
//!   processes shard `k`, so a load that does per-record compute (e.g.
//!   CSR building) stays compute-bound instead of alternating IO and
//!   CPU phases.
//! * [`StreamedCorpus`] — random access by global sample index for the
//!   streamed trainer: shard indices are held in memory (labels and
//!   graph sizes come straight from them), record payloads are fetched
//!   on demand with one seek + one framed read each, so resident memory
//!   stays bounded by the working set instead of the corpus.
//!
//! Both validate every shard against the manifest fingerprint and the
//! full checksum pass of [`ShardReader::open`] before yielding any
//! record.

use std::path::Path;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Mutex;
use std::thread::JoinHandle;

use magic_model::GraphInput;

use crate::cache::{CacheError, CacheManifest, ShardReader, ShardRecord};

/// One fully decoded shard, in canonical sample order.
#[derive(Debug)]
pub struct DecodedShard {
    /// Position of this shard in the cache.
    pub shard_index: usize,
    /// Decoded records in shard order.
    pub records: Vec<ShardRecord>,
}

/// Sequential shard iterator with one shard of read-ahead.
///
/// The iterator yields shards in manifest order; decoding of the next
/// shard overlaps the consumer's processing of the current one through
/// a bounded channel of depth 1 (classic double-buffering: at most two
/// decoded shards are alive at once).
#[derive(Debug)]
pub struct ShardStream {
    rx: Option<Receiver<Result<DecodedShard, CacheError>>>,
    handle: Option<JoinHandle<()>>,
}

impl ShardStream {
    /// Opens the cache at `dir` and starts the prefetch thread.
    ///
    /// When `expected_fingerprint` is given, the manifest (and through
    /// it every shard) must carry that fingerprint.
    ///
    /// # Errors
    ///
    /// [`CacheError::Manifest`] / [`CacheError::FingerprintMismatch`]
    /// on an unusable cache directory; per-shard errors surface through
    /// the iterator.
    pub fn open(
        dir: &Path,
        expected_fingerprint: Option<u64>,
    ) -> Result<(CacheManifest, Self), CacheError> {
        let manifest = CacheManifest::load(dir)?;
        if let Some(expected) = expected_fingerprint {
            if manifest.fingerprint != expected {
                return Err(CacheError::FingerprintMismatch {
                    expected,
                    found: manifest.fingerprint,
                });
            }
        }
        let fingerprint = manifest.fingerprint;
        let paths: Vec<std::path::PathBuf> =
            manifest.shards.iter().map(|s| dir.join(&s.file)).collect();
        let (tx, rx) = sync_channel::<Result<DecodedShard, CacheError>>(1);
        let handle = std::thread::spawn(move || {
            for (shard_index, path) in paths.iter().enumerate() {
                let result = (|| {
                    let mut reader = ShardReader::open(path)?;
                    reader.expect_fingerprint(fingerprint)?;
                    let records = reader.read_all()?;
                    Ok(DecodedShard { shard_index, records })
                })();
                let stop = result.is_err();
                if tx.send(result).is_err() || stop {
                    break;
                }
            }
        });
        Ok((manifest, ShardStream { rx: Some(rx), handle: Some(handle) }))
    }
}

impl Iterator for ShardStream {
    type Item = Result<DecodedShard, CacheError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.rx.as_ref()?.recv().ok()
    }
}

impl Drop for ShardStream {
    fn drop(&mut self) {
        // Unblock a sender waiting on the bounded channel, then reap the
        // thread.
        drop(self.rx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Random-access view of a cache directory, indexed by global sample
/// position (manifest shard order, then record order within the shard —
/// the same canonical order the in-memory pipeline produces).
///
/// Labels and per-sample graph sizes are served from the shard indices
/// without decoding any record; [`fetch`](StreamedCorpus::fetch)
/// decodes exactly the requested records. Shard handles sit behind
/// mutexes so a prefetch thread and the consumer can fetch
/// concurrently.
#[derive(Debug)]
pub struct StreamedCorpus {
    manifest: CacheManifest,
    shards: Vec<Mutex<ShardReader>>,
    /// Global index -> (shard, position in shard).
    map: Vec<(u32, u32)>,
    labels: Vec<usize>,
    vertex_counts: Vec<usize>,
}

impl StreamedCorpus {
    /// Opens and validates every shard of the cache at `dir` (full
    /// checksum pass per shard, manifest fingerprint enforced).
    ///
    /// # Errors
    ///
    /// Any [`CacheError`]; never panics on damaged input.
    pub fn open(dir: &Path, expected_fingerprint: Option<u64>) -> Result<Self, CacheError> {
        let manifest = CacheManifest::load(dir)?;
        if let Some(expected) = expected_fingerprint {
            if manifest.fingerprint != expected {
                return Err(CacheError::FingerprintMismatch {
                    expected,
                    found: manifest.fingerprint,
                });
            }
        }
        let mut shards = Vec::with_capacity(manifest.shards.len());
        let mut map = Vec::with_capacity(manifest.samples);
        let mut labels = Vec::with_capacity(manifest.samples);
        let mut vertex_counts = Vec::with_capacity(manifest.samples);
        for (s, meta) in manifest.shards.iter().enumerate() {
            let reader = ShardReader::open(&dir.join(&meta.file))?;
            reader.expect_fingerprint(manifest.fingerprint)?;
            if reader.len() != meta.records {
                return Err(CacheError::Corrupt(format!(
                    "shard {} holds {} records, manifest says {}",
                    meta.file,
                    reader.len(),
                    meta.records
                )));
            }
            for (r, (label, n)) in
                reader.labels().into_iter().zip(reader.vertex_counts()).enumerate()
            {
                map.push((s as u32, r as u32));
                labels.push(label);
                vertex_counts.push(n);
            }
            shards.push(Mutex::new(reader));
        }
        if map.len() != manifest.samples {
            return Err(CacheError::Corrupt(format!(
                "shards hold {} records, manifest says {}",
                map.len(),
                manifest.samples
            )));
        }
        Ok(StreamedCorpus { manifest, shards, map, labels, vertex_counts })
    }

    /// The cache manifest.
    pub fn manifest(&self) -> &CacheManifest {
        &self.manifest
    }

    /// Total samples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the corpus is empty (never true after a successful
    /// [`open`](StreamedCorpus::open)).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Per-sample class labels in canonical order (from shard indices;
    /// no record decode).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-sample graph sizes in canonical order (from shard indices;
    /// no record decode).
    pub fn vertex_counts(&self) -> &[usize] {
        &self.vertex_counts
    }

    /// Class names, indexable by label.
    pub fn class_names(&self) -> &[String] {
        &self.manifest.class_names
    }

    /// Decodes the records at the given global indices, in the order
    /// given, straight into model-ready [`GraphInput`]s.
    ///
    /// # Errors
    ///
    /// [`CacheError::Corrupt`] / [`CacheError::Io`] if a record fails
    /// to decode (shards were validated at open, so this means the file
    /// changed underneath us).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn fetch(&self, indices: &[usize]) -> Result<Vec<GraphInput>, CacheError> {
        let mut out = Vec::with_capacity(indices.len());
        for &i in indices {
            let (s, r) = self.map[i];
            let record = {
                let mut reader = self.shards[s as usize].lock().expect("shard lock poisoned");
                reader.read_record(r as usize)?
            };
            out.push(record.to_graph_input());
        }
        Ok(out)
    }

    /// Decodes one record by global index (raw, unscaled attributes).
    ///
    /// # Errors
    ///
    /// As for [`fetch`](StreamedCorpus::fetch).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn fetch_record(&self, i: usize) -> Result<ShardRecord, CacheError> {
        let (s, r) = self.map[i];
        let mut reader = self.shards[s as usize].lock().expect("shard lock poisoned");
        reader.read_record(r as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{cache_fingerprint, write_shard, CacheManifest, ShardMeta};
    use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
    use magic_tensor::{Rng64, Tensor};

    fn toy_record(seed: u64, label: usize) -> ShardRecord {
        let mut rng = Rng64::new(seed);
        let n = 3 + rng.next_below(4);
        let mut graph = DiGraph::new(n);
        for v in 1..n {
            graph.add_edge(v - 1, v);
        }
        let attrs: Vec<f32> =
            (0..n * NUM_ATTRIBUTES).map(|_| rng.next_f64() as f32 * 5.0).collect();
        ShardRecord { label, acfg: Acfg::new(graph, Tensor::from_vec(attrs, [n, NUM_ATTRIBUTES])) }
    }

    fn write_toy_cache(dir: &Path, shard_sizes: &[usize]) -> Vec<ShardRecord> {
        std::fs::create_dir_all(dir).unwrap();
        let fp = cache_fingerprint("toy", 1, 1.0, "none");
        let mut all = Vec::new();
        let mut shards = Vec::new();
        let mut next = 0u64;
        for (s, &count) in shard_sizes.iter().enumerate() {
            let records: Vec<ShardRecord> = (0..count)
                .map(|_| {
                    next += 1;
                    toy_record(next, (next % 3) as usize)
                })
                .collect();
            let file = format!("shard-{s:04}.acfg");
            let bytes =
                write_shard(&dir.join(&file), fp, s, shard_sizes.len(), &records).unwrap();
            shards.push(ShardMeta { file, records: records.len(), bytes });
            all.extend(records);
        }
        CacheManifest {
            fingerprint: fp,
            corpus: "toy".into(),
            seed: 1,
            scale: 1.0,
            reduce: "none".into(),
            samples: all.len(),
            class_names: vec!["a".into(), "b".into(), "c".into()],
            shards,
        }
        .save(dir)
        .unwrap();
        all
    }

    #[test]
    fn shard_stream_yields_every_shard_in_order() {
        let dir = std::env::temp_dir().join("magic-stream-test-seq");
        std::fs::remove_dir_all(&dir).ok();
        let all = write_toy_cache(&dir, &[3, 4, 2]);
        let (manifest, stream) = ShardStream::open(&dir, None).unwrap();
        assert_eq!(manifest.samples, 9);
        let mut seen = Vec::new();
        for (k, shard) in stream.enumerate() {
            let shard = shard.unwrap();
            assert_eq!(shard.shard_index, k);
            seen.extend(shard.records);
        }
        assert_eq!(seen.len(), all.len());
        for (a, b) in seen.iter().zip(&all) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.acfg.attributes().as_slice(), b.acfg.attributes().as_slice());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_stream_drop_mid_iteration_does_not_hang() {
        let dir = std::env::temp_dir().join("magic-stream-test-drop");
        std::fs::remove_dir_all(&dir).ok();
        write_toy_cache(&dir, &[2, 2, 2, 2]);
        let (_, mut stream) = ShardStream::open(&dir, None).unwrap();
        let first = stream.next().unwrap().unwrap();
        assert_eq!(first.shard_index, 0);
        drop(stream); // must not deadlock against the blocked sender
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streamed_corpus_random_access_matches_sequential() {
        let dir = std::env::temp_dir().join("magic-stream-test-random");
        std::fs::remove_dir_all(&dir).ok();
        let all = write_toy_cache(&dir, &[4, 3]);
        let corpus = StreamedCorpus::open(&dir, None).unwrap();
        assert_eq!(corpus.len(), 7);
        assert_eq!(corpus.labels(), all.iter().map(|r| r.label).collect::<Vec<_>>().as_slice());
        assert_eq!(
            corpus.vertex_counts(),
            all.iter().map(|r| r.acfg.vertex_count()).collect::<Vec<_>>().as_slice()
        );
        // Fetch out of order; inputs must match the in-memory conversion.
        let picks = [6usize, 0, 3];
        let inputs = corpus.fetch(&picks).unwrap();
        for (input, &i) in inputs.iter().zip(&picks) {
            let expected = all[i].to_graph_input();
            assert_eq!(input.vertex_count(), expected.vertex_count());
            assert_eq!(input.attributes().as_slice(), expected.attributes().as_slice());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_fingerprint_is_a_typed_error() {
        let dir = std::env::temp_dir().join("magic-stream-test-fp");
        std::fs::remove_dir_all(&dir).ok();
        write_toy_cache(&dir, &[2]);
        let err = StreamedCorpus::open(&dir, Some(0xdead_beef)).unwrap_err();
        assert!(matches!(err, CacheError::FingerprintMismatch { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
