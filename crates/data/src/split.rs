//! Stratified K-fold splitting and batching.

use magic_tensor::Rng64;

/// One cross-validation fold: training and validation index sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices used for training (80% of the data in 5-fold CV).
    pub train: Vec<usize>,
    /// Indices held out for validation.
    pub validation: Vec<usize>,
}

/// Deterministic stratified K-fold split.
///
/// Each class's indices are shuffled (seeded) and dealt round-robin into
/// `k` buckets, so every fold preserves the class proportions — required
/// because both corpora are heavily imbalanced (Figs. 7–8).
///
/// # Panics
///
/// Panics if `k < 2` or `k` exceeds the number of samples.
pub fn stratified_kfold(labels: &[usize], k: usize, seed: u64) -> Vec<Fold> {
    assert!(k >= 2, "k-fold requires k >= 2");
    assert!(k <= labels.len(), "k larger than dataset");
    let num_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut rng = Rng64::new(seed);

    // Deal each class round-robin into k buckets.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); k];
    for class in 0..num_classes {
        let mut idxs: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect();
        rng.shuffle(&mut idxs);
        // Rotate the starting bucket per class so small classes do not
        // all pile into bucket 0.
        let offset = rng.next_below(k);
        for (j, idx) in idxs.into_iter().enumerate() {
            buckets[(j + offset) % k].push(idx);
        }
    }

    (0..k)
        .map(|fold| {
            let validation = buckets[fold].clone();
            let mut train: Vec<usize> = buckets
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != fold)
                .flat_map(|(_, b)| b.iter().copied())
                .collect();
            rng.shuffle(&mut train);
            Fold { train, validation }
        })
        .collect()
}

/// Splits `indices` into consecutive mini-batches of at most
/// `batch_size`.
///
/// # Panics
///
/// Panics if `batch_size == 0`.
pub fn batches(indices: &[usize], batch_size: usize) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch size must be positive");
    indices.chunks(batch_size).map(<[usize]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<usize> {
        // 20 of class 0, 10 of class 1, 5 of class 2.
        let mut l = vec![0; 20];
        l.extend(vec![1; 10]);
        l.extend(vec![2; 5]);
        l
    }

    #[test]
    fn folds_partition_the_dataset() {
        let labels = labels();
        let folds = stratified_kfold(&labels, 5, 7);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; labels.len()];
        for f in &folds {
            for &i in &f.validation {
                seen[i] += 1;
            }
            // train ∪ validation covers everything exactly once.
            assert_eq!(f.train.len() + f.validation.len(), labels.len());
            let mut all: Vec<usize> = f.train.iter().chain(&f.validation).copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..labels.len()).collect::<Vec<_>>());
        }
        // Every sample is validated exactly once across folds.
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn folds_preserve_class_proportions() {
        let labels = labels();
        let folds = stratified_kfold(&labels, 5, 7);
        for f in &folds {
            let count0 = f.validation.iter().filter(|&&i| labels[i] == 0).count();
            let count2 = f.validation.iter().filter(|&&i| labels[i] == 2).count();
            assert_eq!(count0, 4, "each fold validates 4 of the 20 class-0");
            assert!(count2 <= 2, "class 2 spread across folds");
        }
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let labels = labels();
        assert_eq!(stratified_kfold(&labels, 5, 1), stratified_kfold(&labels, 5, 1));
        assert_ne!(
            stratified_kfold(&labels, 5, 1)[0].validation,
            stratified_kfold(&labels, 5, 2)[0].validation
        );
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn rejects_k_of_one() {
        stratified_kfold(&[0, 1], 1, 0);
    }

    #[test]
    fn batches_chunk_and_cover() {
        let idx = vec![5, 6, 7, 8, 9];
        let b = batches(&idx, 2);
        assert_eq!(b, vec![vec![5, 6], vec![7, 8], vec![9]]);
    }
}
