//! The `magic-acfg/1` sharded binary ACFG cache format.
//!
//! A cache directory holds a `manifest.json` plus a set of shard files.
//! Each shard is a self-describing little-endian binary file:
//!
//! ```text
//! header (48 bytes)
//!   [u8; 8]  magic            b"MAGCACFG"
//!   u32      version          1 (this module reads exactly version 1)
//!   u32      reserved         0
//!   u64      fingerprint      FNV-1a 64 over (format version, corpus
//!                             name, seed, f64 scale bits, NUM_ATTRIBUTES)
//!   u32      shard_index      position of this shard in the cache
//!   u32      shard_count      total shards in the cache
//!   u32      record_count     records in this shard (> 0)
//!   u32      reserved         0
//!   u64      payload_len      total bytes of the framed records
//! index (record_count × 16 bytes)
//!   u64      offset           record start, relative to payload start
//!   u32      vertex_count     graph size (readable without decoding)
//!   u32      label            class label (readable without decoding)
//! payload (payload_len bytes)
//!   per record: u32 length, then `length` record bytes
//! footer (8 bytes)
//!   u64      checksum         FNV-1a 64 over index bytes ++ payload bytes
//! ```
//!
//! A record encodes one labeled [`Acfg`] with exact `f32` attribute bits
//! (the *raw* Table I counts — log-scaling happens in
//! [`GraphInput::from_acfg`], identically for cached and freshly
//! extracted graphs, which is what makes the cached path bitwise
//! interchangeable with the in-memory path):
//!
//! ```text
//! u32 label, u32 n (vertices), u32 m (edges),
//! m × (u32 src, u32 dst),
//! n × NUM_ATTRIBUTES × f32 (row-major attribute bits)
//! ```
//!
//! Damage never panics: every way a shard can be wrong — foreign file,
//! future version, wrong fingerprint, truncation, bit rot, zero records,
//! malformed record bytes — surfaces as a typed [`CacheError`], the same
//! contract the `magic-trace` reader keeps via its `malformed_lines`
//! accounting.

use std::fmt;
use std::fs::File;
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
use magic_model::GraphInput;
use magic_obs as obs;
use magic_tensor::Tensor;

/// Schema name of the shard format, following the `magic-trace/N`
/// convention.
pub const CACHE_SCHEMA_NAME: &str = "magic-acfg/1";

/// Current (and only) shard format version.
pub const CACHE_VERSION: u32 = 1;

/// Shard file magic bytes.
pub const CACHE_MAGIC: [u8; 8] = *b"MAGCACFG";

/// Manifest file name inside a cache directory.
pub const MANIFEST_FILE: &str = "manifest.json";

const HEADER_LEN: u64 = 48;
const INDEX_ENTRY_LEN: u64 = 16;
const FOOTER_LEN: u64 = 8;

// ---- errors ------------------------------------------------------------

/// Typed failure modes of the binary cache.
#[derive(Debug)]
pub enum CacheError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file does not start with the `magic-acfg` magic bytes.
    BadMagic,
    /// The shard was written by a format version this reader does not
    /// understand.
    UnsupportedVersion {
        /// Version found in the shard header.
        found: u32,
    },
    /// The shard or manifest belongs to a different (generator, seed,
    /// scale) configuration.
    FingerprintMismatch {
        /// Fingerprint the caller expected.
        expected: u64,
        /// Fingerprint found on disk.
        found: u64,
    },
    /// The file is shorter than its header claims.
    Truncated {
        /// Byte length the header implies.
        expected: u64,
        /// Actual file length.
        found: u64,
    },
    /// The footer checksum does not match the index + payload bytes.
    ChecksumMismatch {
        /// Checksum recorded in the footer.
        expected: u64,
        /// Checksum recomputed from the bytes.
        found: u64,
    },
    /// The shard declares zero records (the builder never writes one).
    EmptyShard,
    /// Structurally invalid bytes inside an otherwise well-framed shard.
    Corrupt(String),
    /// Missing or malformed `manifest.json`.
    Manifest(String),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache io error: {e}"),
            CacheError::BadMagic => write!(f, "not a {CACHE_SCHEMA_NAME} shard (bad magic)"),
            CacheError::UnsupportedVersion { found } => {
                write!(f, "unsupported shard version {found} (reader supports {CACHE_VERSION})")
            }
            CacheError::FingerprintMismatch { expected, found } => write!(
                f,
                "cache fingerprint mismatch: expected {expected:#018x}, found {found:#018x} \
                 (different generator/seed/scale)"
            ),
            CacheError::Truncated { expected, found } => {
                write!(f, "truncated shard: header implies {expected} bytes, file has {found}")
            }
            CacheError::ChecksumMismatch { expected, found } => write!(
                f,
                "shard checksum mismatch: footer {expected:#018x}, computed {found:#018x}"
            ),
            CacheError::EmptyShard => write!(f, "shard declares zero records"),
            CacheError::Corrupt(why) => write!(f, "corrupt shard record: {why}"),
            CacheError::Manifest(why) => write!(f, "cache manifest error: {why}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<io::Error> for CacheError {
    fn from(e: io::Error) -> Self {
        CacheError::Io(e)
    }
}

// ---- fingerprint / checksum --------------------------------------------

/// Streaming FNV-1a 64-bit hash (dependency-free, stable across
/// platforms).
#[derive(Clone)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Content fingerprint of a cache configuration.
///
/// Two caches share a fingerprint exactly when they hold the same
/// samples in the same canonical order: the hash covers the format
/// version, the generator name, the exact seed, the exact `f64` bit
/// pattern of the scale, the attribute schema width, and the canonical
/// graph-reduction strategy name (`"none"`, `"chain"`, `"prune"`,
/// `"coarsen:<rounds>"`). Shards store *reduced* graphs, so a cache
/// built with one strategy must never silently serve another — the
/// strategy is part of the identity, not a load-time option. Shard
/// *count* is deliberately excluded — shards split the canonical sample
/// sequence into contiguous chunks, so relayouts with a different shard
/// count still decode to the identical corpus.
pub fn cache_fingerprint(corpus: &str, seed: u64, scale: f64, reduce: &str) -> u64 {
    let mut h = Fnv64::new();
    h.update(&CACHE_VERSION.to_le_bytes());
    h.update(corpus.as_bytes());
    h.update(&seed.to_le_bytes());
    h.update(&scale.to_bits().to_le_bytes());
    h.update(&(NUM_ATTRIBUTES as u32).to_le_bytes());
    h.update(reduce.as_bytes());
    h.finish()
}

// ---- records -----------------------------------------------------------

/// One cached sample: a raw-attribute [`Acfg`] plus its class label.
#[derive(Debug, Clone)]
pub struct ShardRecord {
    /// Class label (index into the manifest's `class_names`).
    pub label: usize,
    /// The attributed CFG with raw (unscaled) Table I counts.
    pub acfg: Acfg,
}

impl ShardRecord {
    /// Builds the model-ready input (applies the same `ln(1 + x)`
    /// attribute scaling as the in-memory extraction path).
    pub fn to_graph_input(&self) -> GraphInput {
        GraphInput::from_acfg(&self.acfg)
    }
}

/// Encodes one record to its binary form (no length frame).
pub fn encode_record(record: &ShardRecord) -> Vec<u8> {
    let acfg = &record.acfg;
    let n = acfg.vertex_count();
    let m = acfg.edge_count();
    let mut out = Vec::with_capacity(12 + 8 * m + 4 * NUM_ATTRIBUTES * n);
    out.extend_from_slice(&(record.label as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(m as u32).to_le_bytes());
    for (u, v) in acfg.graph().edges() {
        out.extend_from_slice(&(u as u32).to_le_bytes());
        out.extend_from_slice(&(v as u32).to_le_bytes());
    }
    for &x in acfg.attributes().as_slice() {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u32(&mut self) -> Result<u32, CacheError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(CacheError::Corrupt("record ends mid-field".into()));
        }
        let v = u32::from_le_bytes(self.bytes[self.pos..end].try_into().unwrap());
        self.pos = end;
        Ok(v)
    }
}

/// Decodes one record from its binary form (no length frame).
///
/// Every structural invariant is checked — field framing, exact byte
/// length, edge endpoints in range, no duplicate edges — so corrupt
/// bytes return [`CacheError::Corrupt`] instead of panicking.
pub fn decode_record(bytes: &[u8]) -> Result<ShardRecord, CacheError> {
    let mut c = Cursor { bytes, pos: 0 };
    let label = c.u32()? as usize;
    let n = c.u32()? as usize;
    let m = c.u32()? as usize;
    if n == 0 {
        return Err(CacheError::Corrupt("record with zero vertices".into()));
    }
    let expected = 12 + 8 * m + 4 * NUM_ATTRIBUTES * n;
    if bytes.len() != expected {
        return Err(CacheError::Corrupt(format!(
            "record length {} does not match n={n}, m={m} (expected {expected})",
            bytes.len()
        )));
    }
    let mut graph = DiGraph::new(n);
    for _ in 0..m {
        let u = c.u32()? as usize;
        let v = c.u32()? as usize;
        if u >= n || v >= n {
            return Err(CacheError::Corrupt(format!("edge ({u},{v}) out of range for {n} vertices")));
        }
        if !graph.add_edge(u, v) {
            return Err(CacheError::Corrupt(format!("duplicate edge ({u},{v})")));
        }
    }
    let mut attrs = Vec::with_capacity(n * NUM_ATTRIBUTES);
    for _ in 0..n * NUM_ATTRIBUTES {
        attrs.push(f32::from_bits(c.u32()?));
    }
    let attributes = Tensor::from_vec(attrs, [n, NUM_ATTRIBUTES]);
    Ok(ShardRecord { label, acfg: Acfg::new(graph, attributes) })
}

// ---- shard writing -----------------------------------------------------

/// Writes one shard file; returns its total byte length.
///
/// Emits a [`magic_obs::stage::CACHE_WRITE`] span with `shard`,
/// `records`, and `bytes` fields plus the
/// [`magic_obs::stage::C_CACHE_BYTES_WRITTEN`] counter.
///
/// # Errors
///
/// [`CacheError::EmptyShard`] when `records` is empty, or
/// [`CacheError::Io`] on filesystem failure.
pub fn write_shard(
    path: &Path,
    fingerprint: u64,
    shard_index: usize,
    shard_count: usize,
    records: &[ShardRecord],
) -> Result<u64, CacheError> {
    if records.is_empty() {
        return Err(CacheError::EmptyShard);
    }
    let mut index = Vec::with_capacity(records.len() * INDEX_ENTRY_LEN as usize);
    let mut payload = Vec::new();
    for record in records {
        index.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        index.extend_from_slice(&(record.acfg.vertex_count() as u32).to_le_bytes());
        index.extend_from_slice(&(record.label as u32).to_le_bytes());
        let body = encode_record(record);
        payload.extend_from_slice(&(body.len() as u32).to_le_bytes());
        payload.extend_from_slice(&body);
    }
    let mut checksum = Fnv64::new();
    checksum.update(&index);
    checksum.update(&payload);

    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.extend_from_slice(&CACHE_MAGIC);
    header.extend_from_slice(&CACHE_VERSION.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    header.extend_from_slice(&fingerprint.to_le_bytes());
    header.extend_from_slice(&(shard_index as u32).to_le_bytes());
    header.extend_from_slice(&(shard_count as u32).to_le_bytes());
    header.extend_from_slice(&(records.len() as u32).to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    debug_assert_eq!(header.len() as u64, HEADER_LEN);

    let total = HEADER_LEN + index.len() as u64 + payload.len() as u64 + FOOTER_LEN;
    let _span = obs::span_fields(
        obs::stage::CACHE_WRITE,
        &[
            ("shard", shard_index as f64),
            ("records", records.len() as f64),
            ("bytes", total as f64),
        ],
    );
    let mut file = File::create(path)?;
    file.write_all(&header)?;
    file.write_all(&index)?;
    file.write_all(&payload)?;
    file.write_all(&checksum.finish().to_le_bytes())?;
    file.sync_all()?;
    obs::counter(obs::stage::C_CACHE_BYTES_WRITTEN, total as f64);
    Ok(total)
}

// ---- shard reading -----------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    offset: u64,
    vertex_count: u32,
    label: u32,
}

/// Validated random-access reader over one shard file.
///
/// [`open`](ShardReader::open) performs the full integrity pass —
/// header checks, size check against the declared layout, and a
/// streaming checksum of index + payload — so every later
/// [`read_record`](ShardReader::read_record) touches only the bytes of
/// the record it decodes.
#[derive(Debug)]
pub struct ShardReader {
    file: File,
    path: PathBuf,
    fingerprint: u64,
    shard_index: usize,
    shard_count: usize,
    index: Vec<IndexEntry>,
    payload_start: u64,
    payload_len: u64,
}

impl ShardReader {
    /// Opens and fully validates a shard file.
    ///
    /// # Errors
    ///
    /// Any [`CacheError`] variant except `Manifest`; never panics on
    /// damaged input.
    pub fn open(path: &Path) -> Result<Self, CacheError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN {
            return Err(CacheError::Truncated { expected: HEADER_LEN, found: file_len });
        }
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)?;
        if header[0..8] != CACHE_MAGIC {
            return Err(CacheError::BadMagic);
        }
        let u32_at = |i: usize| u32::from_le_bytes(header[i..i + 4].try_into().unwrap());
        let u64_at = |i: usize| u64::from_le_bytes(header[i..i + 8].try_into().unwrap());
        let version = u32_at(8);
        if version != CACHE_VERSION {
            return Err(CacheError::UnsupportedVersion { found: version });
        }
        let fingerprint = u64_at(16);
        let shard_index = u32_at(24) as usize;
        let shard_count = u32_at(28) as usize;
        let record_count = u32_at(32) as usize;
        let payload_len = u64_at(40);
        if record_count == 0 {
            return Err(CacheError::EmptyShard);
        }
        let index_len = record_count as u64 * INDEX_ENTRY_LEN;
        let expected_len = HEADER_LEN + index_len + payload_len + FOOTER_LEN;
        if file_len != expected_len {
            return Err(CacheError::Truncated { expected: expected_len, found: file_len });
        }

        let mut index_bytes = vec![0u8; index_len as usize];
        file.read_exact(&mut index_bytes)?;
        let mut checksum = Fnv64::new();
        checksum.update(&index_bytes);

        // Stream the payload through the hash without holding it.
        let mut remaining = payload_len;
        let mut chunk = vec![0u8; 1 << 16];
        while remaining > 0 {
            let take = remaining.min(chunk.len() as u64) as usize;
            file.read_exact(&mut chunk[..take])?;
            checksum.update(&chunk[..take]);
            remaining -= take as u64;
        }
        let mut footer = [0u8; 8];
        file.read_exact(&mut footer)?;
        let expected_sum = u64::from_le_bytes(footer);
        let found_sum = checksum.finish();
        if expected_sum != found_sum {
            return Err(CacheError::ChecksumMismatch { expected: expected_sum, found: found_sum });
        }

        let mut index = Vec::with_capacity(record_count);
        for i in 0..record_count {
            let base = i * INDEX_ENTRY_LEN as usize;
            let offset = u64::from_le_bytes(index_bytes[base..base + 8].try_into().unwrap());
            let vertex_count =
                u32::from_le_bytes(index_bytes[base + 8..base + 12].try_into().unwrap());
            let label = u32::from_le_bytes(index_bytes[base + 12..base + 16].try_into().unwrap());
            if offset.saturating_add(4) > payload_len {
                return Err(CacheError::Corrupt(format!(
                    "index entry {i} offset {offset} outside payload of {payload_len} bytes"
                )));
            }
            index.push(IndexEntry { offset, vertex_count, label });
        }

        Ok(ShardReader {
            file,
            path: path.to_path_buf(),
            fingerprint,
            shard_index,
            shard_count,
            index,
            payload_start: HEADER_LEN + index_len,
            payload_len,
        })
    }

    /// Fails unless the shard carries the expected configuration
    /// fingerprint.
    pub fn expect_fingerprint(&self, expected: u64) -> Result<(), CacheError> {
        if self.fingerprint != expected {
            return Err(CacheError::FingerprintMismatch { expected, found: self.fingerprint });
        }
        Ok(())
    }

    /// Number of records in the shard.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the shard holds no records (never true for a shard that
    /// passed [`open`](ShardReader::open)).
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Configuration fingerprint from the header.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// This shard's position in the cache.
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// Total shards in the cache this shard belongs to.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Per-record class labels, straight from the index (no record
    /// decode).
    pub fn labels(&self) -> Vec<usize> {
        self.index.iter().map(|e| e.label as usize).collect()
    }

    /// Per-record graph sizes, straight from the index (no record
    /// decode).
    pub fn vertex_counts(&self) -> Vec<usize> {
        self.index.iter().map(|e| e.vertex_count as usize).collect()
    }

    /// Shard file size in bytes.
    pub fn byte_len(&self) -> u64 {
        HEADER_LEN + self.index.len() as u64 * INDEX_ENTRY_LEN + self.payload_len + FOOTER_LEN
    }

    /// Reads and decodes one record by position (seek + single framed
    /// read). Emits the [`magic_obs::stage::C_CACHE_BYTES_READ`]
    /// counter.
    ///
    /// # Errors
    ///
    /// [`CacheError::Corrupt`] on framing/consistency violations,
    /// [`CacheError::Io`] on filesystem failure.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn read_record(&mut self, i: usize) -> Result<ShardRecord, CacheError> {
        let entry = self.index[i];
        self.file.seek(SeekFrom::Start(self.payload_start + entry.offset))?;
        let mut len_bytes = [0u8; 4];
        self.file.read_exact(&mut len_bytes)?;
        let len = u32::from_le_bytes(len_bytes) as u64;
        if entry.offset + 4 + len > self.payload_len {
            return Err(CacheError::Corrupt(format!(
                "record {i} frame of {len} bytes overruns payload"
            )));
        }
        let mut body = vec![0u8; len as usize];
        self.file.read_exact(&mut body)?;
        let record = decode_record(&body)?;
        if record.label != entry.label as usize
            || record.acfg.vertex_count() != entry.vertex_count as usize
        {
            return Err(CacheError::Corrupt(format!("record {i} disagrees with its index entry")));
        }
        obs::counter(obs::stage::C_CACHE_BYTES_READ, (4 + len) as f64);
        Ok(record)
    }

    /// Reads and decodes every record in shard order with one
    /// sequential payload read. Emits a
    /// [`magic_obs::stage::CACHE_READ`] span and the
    /// [`magic_obs::stage::C_CACHE_BYTES_READ`] counter.
    ///
    /// # Errors
    ///
    /// [`CacheError::Corrupt`] on framing/consistency violations,
    /// [`CacheError::Io`] on filesystem failure.
    pub fn read_all(&mut self) -> Result<Vec<ShardRecord>, CacheError> {
        let _span = obs::span_fields(
            obs::stage::CACHE_READ,
            &[
                ("shard", self.shard_index as f64),
                ("records", self.index.len() as f64),
                ("bytes", self.payload_len as f64),
            ],
        );
        self.file.seek(SeekFrom::Start(self.payload_start))?;
        let mut payload = vec![0u8; self.payload_len as usize];
        self.file.read_exact(&mut payload)?;
        let mut records = Vec::with_capacity(self.index.len());
        for (i, entry) in self.index.iter().enumerate() {
            let start = entry.offset as usize;
            let len = u32::from_le_bytes(
                payload
                    .get(start..start + 4)
                    .ok_or_else(|| CacheError::Corrupt(format!("record {i} frame missing")))?
                    .try_into()
                    .unwrap(),
            ) as usize;
            let body = payload
                .get(start + 4..start + 4 + len)
                .ok_or_else(|| CacheError::Corrupt(format!("record {i} overruns payload")))?;
            let record = decode_record(body)?;
            if record.label != entry.label as usize
                || record.acfg.vertex_count() != entry.vertex_count as usize
            {
                return Err(CacheError::Corrupt(format!(
                    "record {i} disagrees with its index entry"
                )));
            }
            records.push(record);
        }
        obs::counter(obs::stage::C_CACHE_BYTES_READ, self.payload_len as f64);
        Ok(records)
    }

    /// Path this reader was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---- manifest ----------------------------------------------------------

/// Per-shard entry in the cache manifest.
#[derive(Debug, Clone)]
pub struct ShardMeta {
    /// Shard file name, relative to the cache directory.
    pub file: String,
    /// Records in the shard.
    pub records: usize,
    /// Shard file size in bytes.
    pub bytes: u64,
}

/// The `manifest.json` of a cache directory: configuration identity plus
/// the shard layout.
#[derive(Debug, Clone)]
pub struct CacheManifest {
    /// Configuration fingerprint (see [`cache_fingerprint`]).
    pub fingerprint: u64,
    /// Generator name (`"mskcfg"` / `"yancfg"`).
    pub corpus: String,
    /// Generator seed.
    pub seed: u64,
    /// Generator scale.
    pub scale: f64,
    /// Canonical graph-reduction strategy name the shards were built
    /// with (`"none"` when graphs are stored unreduced).
    pub reduce: String,
    /// Total samples across all shards.
    pub samples: usize,
    /// Class names, indexable by record label.
    pub class_names: Vec<String>,
    /// Shards in canonical sample order.
    pub shards: Vec<ShardMeta>,
}

impl CacheManifest {
    /// Path of the manifest file inside `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Serializes and writes the manifest into `dir`.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] on filesystem failure.
    pub fn save(&self, dir: &Path) -> Result<(), CacheError> {
        let shards: Vec<magic_json::Value> = self
            .shards
            .iter()
            .map(|s| {
                magic_json::json!({
                    "file": (s.file.as_str()),
                    "records": (s.records as f64),
                    "bytes": (s.bytes as f64),
                })
            })
            .collect();
        let value = magic_json::json!({
            "format": CACHE_SCHEMA_NAME,
            "version": (CACHE_VERSION as f64),
            "fingerprint": (format!("{:#018x}", self.fingerprint)),
            "corpus": (self.corpus.as_str()),
            "seed": (self.seed as f64),
            "scale": (self.scale),
            "scale_bits": (format!("{:#018x}", self.scale.to_bits())),
            "reduce": (self.reduce.as_str()),
            "samples": (self.samples as f64),
            "class_names": (self.class_names.clone()),
            "shards": shards,
        });
        std::fs::write(Self::path(dir), magic_json::to_string_pretty(&value))?;
        Ok(())
    }

    /// Loads and validates the manifest from `dir`.
    ///
    /// # Errors
    ///
    /// [`CacheError::Manifest`] when the file is missing or malformed.
    pub fn load(dir: &Path) -> Result<Self, CacheError> {
        let path = Self::path(dir);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            CacheError::Manifest(format!("cannot read {}: {e}", path.display()))
        })?;
        let value = magic_json::from_str(&text)
            .map_err(|e| CacheError::Manifest(format!("malformed {}: {e}", path.display())))?;
        let format = value["format"].as_str().unwrap_or_default();
        if format != CACHE_SCHEMA_NAME {
            return Err(CacheError::Manifest(format!(
                "format {format:?} is not {CACHE_SCHEMA_NAME:?}"
            )));
        }
        let hex_u64 = |key: &str| -> Result<u64, CacheError> {
            let s = value[key]
                .as_str()
                .ok_or_else(|| CacheError::Manifest(format!("missing {key}")))?;
            u64::from_str_radix(s.trim_start_matches("0x"), 16)
                .map_err(|e| CacheError::Manifest(format!("bad {key}: {e}")))
        };
        let fingerprint = hex_u64("fingerprint")?;
        let scale = f64::from_bits(hex_u64("scale_bits")?);
        let corpus = value["corpus"]
            .as_str()
            .ok_or_else(|| CacheError::Manifest("missing corpus".into()))?
            .to_string();
        let seed = value["seed"]
            .as_u64()
            .ok_or_else(|| CacheError::Manifest("missing seed".into()))?;
        // Manifests written before the reduction stage carry no
        // `reduce` key; they hold unreduced graphs by definition.
        let reduce = value["reduce"].as_str().unwrap_or("none").to_string();
        let samples = value["samples"]
            .as_u64()
            .ok_or_else(|| CacheError::Manifest("missing samples".into()))?
            as usize;
        let class_names = value["class_names"]
            .as_array()
            .ok_or_else(|| CacheError::Manifest("missing class_names".into()))?
            .iter()
            .map(|v| v.as_str().unwrap_or_default().to_string())
            .collect();
        let shards = value["shards"]
            .as_array()
            .ok_or_else(|| CacheError::Manifest("missing shards".into()))?
            .iter()
            .map(|s| -> Result<ShardMeta, CacheError> {
                Ok(ShardMeta {
                    file: s["file"]
                        .as_str()
                        .ok_or_else(|| CacheError::Manifest("shard missing file".into()))?
                        .to_string(),
                    records: s["records"]
                        .as_u64()
                        .ok_or_else(|| CacheError::Manifest("shard missing records".into()))?
                        as usize,
                    bytes: s["bytes"]
                        .as_u64()
                        .ok_or_else(|| CacheError::Manifest("shard missing bytes".into()))?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        if shards.is_empty() {
            return Err(CacheError::Manifest("manifest lists zero shards".into()));
        }
        Ok(CacheManifest { fingerprint, corpus, seed, scale, reduce, samples, class_names, shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_tensor::Rng64;

    fn toy_record(seed: u64, label: usize) -> ShardRecord {
        let mut rng = Rng64::new(seed);
        let n = 4 + rng.next_below(5);
        let mut graph = DiGraph::new(n);
        for v in 1..n {
            graph.add_edge(v - 1, v);
        }
        graph.add_edge(n - 1, 0);
        let attrs: Vec<f32> =
            (0..n * NUM_ATTRIBUTES).map(|_| rng.next_f64() as f32 * 7.0).collect();
        ShardRecord { label, acfg: Acfg::new(graph, Tensor::from_vec(attrs, [n, NUM_ATTRIBUTES])) }
    }

    #[test]
    fn record_roundtrip_is_bitwise() {
        let record = toy_record(3, 2);
        let bytes = encode_record(&record);
        let back = decode_record(&bytes).unwrap();
        assert_eq!(back.label, 2);
        assert_eq!(back.acfg.vertex_count(), record.acfg.vertex_count());
        assert_eq!(back.acfg.edge_count(), record.acfg.edge_count());
        assert_eq!(back.acfg.attributes().as_slice(), record.acfg.attributes().as_slice());
        // Re-encoding the decoded record reproduces identical bytes.
        assert_eq!(encode_record(&back), bytes);
    }

    #[test]
    fn shard_roundtrip_preserves_order_and_bits() {
        let dir = std::env::temp_dir().join("magic-cache-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.acfg");
        let records: Vec<ShardRecord> = (0..6).map(|i| toy_record(i as u64, i % 3)).collect();
        let fp = cache_fingerprint("toy", 1, 0.5, "none");
        write_shard(&path, fp, 0, 1, &records).unwrap();

        let mut reader = ShardReader::open(&path).unwrap();
        reader.expect_fingerprint(fp).unwrap();
        assert_eq!(reader.len(), 6);
        assert_eq!(reader.labels(), vec![0, 1, 2, 0, 1, 2]);
        let all = reader.read_all().unwrap();
        for (a, b) in all.iter().zip(&records) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.acfg.attributes().as_slice(), b.acfg.attributes().as_slice());
        }
        // Random access agrees with the sequential read.
        let one = reader.read_record(4).unwrap();
        assert_eq!(one.label, all[4].label);
        assert_eq!(one.acfg.attributes().as_slice(), all[4].acfg.attributes().as_slice());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_separates_configurations() {
        let base = cache_fingerprint("mskcfg", 7, 0.01, "none");
        assert_ne!(cache_fingerprint("yancfg", 7, 0.01, "none"), base);
        assert_ne!(cache_fingerprint("mskcfg", 8, 0.01, "none"), base);
        assert_ne!(cache_fingerprint("mskcfg", 7, 0.02, "none"), base);
        assert_eq!(cache_fingerprint("mskcfg", 7, 0.01, "none"), base);
    }

    #[test]
    fn fingerprint_separates_reduce_strategies() {
        let strategies = ["none", "chain", "prune", "coarsen:1", "coarsen:2"];
        let prints: Vec<u64> =
            strategies.iter().map(|r| cache_fingerprint("mskcfg", 7, 0.01, r)).collect();
        for i in 0..prints.len() {
            for j in (i + 1)..prints.len() {
                assert_ne!(
                    prints[i], prints[j],
                    "strategies {} and {} must not share a fingerprint",
                    strategies[i], strategies[j]
                );
            }
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let dir = std::env::temp_dir().join("magic-cache-test-manifest");
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = CacheManifest {
            fingerprint: cache_fingerprint("mskcfg", 7, 0.01, "chain"),
            corpus: "mskcfg".into(),
            seed: 7,
            scale: 0.01,
            reduce: "chain".into(),
            samples: 131,
            class_names: vec!["A".into(), "B".into()],
            shards: vec![ShardMeta { file: "shard-0000.acfg".into(), records: 131, bytes: 9000 }],
        };
        manifest.save(&dir).unwrap();
        let back = CacheManifest::load(&dir).unwrap();
        assert_eq!(back.fingerprint, manifest.fingerprint);
        assert_eq!(back.corpus, "mskcfg");
        assert_eq!(back.seed, 7);
        assert_eq!(back.scale.to_bits(), manifest.scale.to_bits());
        assert_eq!(back.reduce, "chain");
        assert_eq!(back.samples, 131);
        assert_eq!(back.class_names, manifest.class_names);
        assert_eq!(back.shards.len(), 1);
        assert_eq!(back.shards[0].records, 131);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_without_reduce_key_defaults_to_none() {
        let dir = std::env::temp_dir().join("magic-cache-test-manifest-compat");
        std::fs::create_dir_all(&dir).unwrap();
        // A pre-reduction manifest: no "reduce" key at all.
        let text = format!(
            r#"{{
  "format": "{CACHE_SCHEMA_NAME}",
  "version": 1,
  "fingerprint": "0x0000000000000001",
  "corpus": "mskcfg",
  "seed": 7,
  "scale": 0.01,
  "scale_bits": "{:#018x}",
  "samples": 3,
  "class_names": ["A"],
  "shards": [{{"file": "shard-0000.acfg", "records": 3, "bytes": 100}}]
}}"#,
            0.01f64.to_bits()
        );
        std::fs::write(CacheManifest::path(&dir), text).unwrap();
        let back = CacheManifest::load(&dir).unwrap();
        assert_eq!(back.reduce, "none");
        std::fs::remove_dir_all(&dir).ok();
    }
}
