//! The labeled dataset container.

use crate::split::{stratified_kfold, Fold};

/// A labeled classification dataset over arbitrary sample types.
///
/// Samples, integer labels and human-readable class names travel
/// together; every accessor is index-based so splits can be represented
/// as index vectors without cloning samples.
#[derive(Debug, Clone)]
pub struct Dataset<T> {
    items: Vec<T>,
    labels: Vec<usize>,
    class_names: Vec<String>,
}

impl<T> Dataset<T> {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `items` and `labels` differ in length, or a label is out
    /// of range for `class_names`.
    pub fn new(items: Vec<T>, labels: Vec<usize>, class_names: Vec<String>) -> Self {
        assert_eq!(items.len(), labels.len(), "one label per item required");
        for &l in &labels {
            assert!(l < class_names.len(), "label {l} out of range");
        }
        Dataset { items, labels, class_names }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.class_names.len()
    }

    /// The class names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Sample at `idx`.
    pub fn item(&self, idx: usize) -> &T {
        &self.items[idx]
    }

    /// Label at `idx`.
    pub fn label(&self, idx: usize) -> usize {
        self.labels[idx]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Iterates `(sample, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&T, usize)> {
        self.items.iter().zip(self.labels.iter().copied())
    }

    /// Per-class sample counts.
    pub fn class_distribution(&self) -> Vec<usize> {
        let mut counts = vec![0; self.num_classes()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Stratified K-fold split of this dataset's indices; see
    /// [`stratified_kfold`].
    pub fn stratified_kfold(&self, k: usize, seed: u64) -> Vec<Fold> {
        stratified_kfold(&self.labels, k, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset<u32> {
        Dataset::new(
            vec![10, 20, 30, 40, 50, 60],
            vec![0, 0, 0, 1, 1, 1],
            vec!["A".into(), "B".into()],
        )
    }

    #[test]
    fn accessors_roundtrip() {
        let ds = dataset();
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.num_classes(), 2);
        assert_eq!(*ds.item(3), 40);
        assert_eq!(ds.label(3), 1);
        assert_eq!(ds.class_distribution(), vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        Dataset::new(vec![1], vec![5], vec!["A".into()]);
    }

    #[test]
    #[should_panic(expected = "one label per item")]
    fn rejects_length_mismatch() {
        Dataset::new(vec![1, 2], vec![0], vec!["A".into()]);
    }

    #[test]
    fn iter_yields_pairs_in_order() {
        let ds = dataset();
        let pairs: Vec<(u32, usize)> = ds.iter().map(|(x, l)| (*x, l)).collect();
        assert_eq!(pairs[0], (10, 0));
        assert_eq!(pairs[5], (60, 1));
    }
}
