//! One-vs-rest linear SVM ensemble — the stand-in for ESVC [8], the
//! chained Neyman-Pearson SVM system Fig. 11 compares against.

use crate::Classifier;
use magic_tensor::Rng64;

/// A set of one-vs-rest linear SVMs trained with the Pegasos
/// (stochastic sub-gradient) algorithm on standardized features.
/// Probabilities are a softmax over the per-class margins.
#[derive(Debug, Clone)]
pub struct LinearSvmEnsemble {
    epochs: usize,
    lambda: f64,
    seed: u64,
    // One (weights, bias) per class.
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
    // Feature standardization fitted on training data.
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl LinearSvmEnsemble {
    /// Creates an unfitted ensemble. `lambda` is the Pegasos
    /// regularization strength.
    ///
    /// # Panics
    ///
    /// Panics on zero epochs or non-positive lambda.
    pub fn new(epochs: usize, lambda: f64, seed: u64) -> Self {
        assert!(epochs > 0, "need at least one epoch");
        assert!(lambda > 0.0, "lambda must be positive");
        LinearSvmEnsemble {
            epochs,
            lambda,
            seed,
            weights: Vec::new(),
            biases: Vec::new(),
            means: Vec::new(),
            stds: Vec::new(),
        }
    }

    fn standardize(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Signed margin of class `c` for a standardized sample.
    fn margin(&self, c: usize, z: &[f64]) -> f64 {
        self.weights[c].iter().zip(z).map(|(w, x)| w * x).sum::<f64>() + self.biases[c]
    }
}

impl Classifier for LinearSvmEnsemble {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], num_classes: usize) {
        assert!(!x.is_empty(), "cannot fit on empty data");
        let d = x[0].len();
        // Fit the standardization.
        self.means = vec![0.0; d];
        for xi in x {
            for (m, v) in self.means.iter_mut().zip(xi) {
                *m += v;
            }
        }
        for m in &mut self.means {
            *m /= x.len() as f64;
        }
        self.stds = vec![0.0; d];
        for xi in x {
            for ((s, v), m) in self.stds.iter_mut().zip(xi).zip(&self.means) {
                *s += (v - m).powi(2);
            }
        }
        for s in &mut self.stds {
            *s = (*s / x.len() as f64).sqrt().max(1e-9);
        }
        let z: Vec<Vec<f64>> = x.iter().map(|xi| self.standardize(xi)).collect();

        // Pegasos per class.
        self.weights = vec![vec![0.0; d]; num_classes];
        self.biases = vec![0.0; num_classes];
        let mut rng = Rng64::new(self.seed);
        for c in 0..num_classes {
            let mut t = 0u64;
            for _ in 0..self.epochs {
                let mut order: Vec<usize> = (0..z.len()).collect();
                rng.shuffle(&mut order);
                for i in order {
                    t += 1;
                    let eta = 1.0 / (self.lambda * t as f64);
                    let target = if y[i] == c { 1.0 } else { -1.0 };
                    let margin = self.margin(c, &z[i]);
                    // Sub-gradient of the hinge loss + L2.
                    for (w, xv) in self.weights[c].iter_mut().zip(&z[i]) {
                        *w *= 1.0 - eta * self.lambda;
                        if target * margin < 1.0 {
                            *w += eta * target * xv;
                        }
                    }
                    if target * margin < 1.0 {
                        self.biases[c] += eta * target;
                    }
                }
            }
        }
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert!(!self.weights.is_empty(), "SVM ensemble is not fitted");
        let z = self.standardize(x);
        let margins: Vec<f64> = (0..self.weights.len()).map(|c| self.margin(c, &z)).collect();
        let m = margins.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = margins.iter().map(|s| (s - m).exp()).collect();
        let total: f64 = exps.iter().sum();
        exps.iter().map(|e| e / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = Rng64::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..3usize {
            let (cx, cy) = [(0.0, 0.0), (6.0, 0.0), (0.0, 6.0)][c];
            for _ in 0..20 {
                x.push(vec![
                    cx + rng.next_normal() as f64,
                    cy + rng.next_normal() as f64,
                ]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn svm_solves_linear_problem() {
        let (x, y) = linearly_separable(1);
        let mut svm = LinearSvmEnsemble::new(20, 0.01, 3);
        svm.fit(&x, &y, 3);
        let correct = x.iter().zip(&y).filter(|(xi, yi)| svm.predict(xi) == **yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.9, "{correct}/60");
    }

    #[test]
    fn svm_fails_on_nonlinear_rings() {
        // The motivation for MAGIC's Fig. 11 wins: linear models cannot
        // separate radius-defined classes.
        let mut rng = Rng64::new(4);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            let r = if i % 2 == 0 { 1.0 } else { 3.0 };
            let theta = rng.next_f64() * std::f64::consts::TAU;
            x.push(vec![r * theta.cos(), r * theta.sin()]);
            y.push(i % 2);
        }
        let mut svm = LinearSvmEnsemble::new(20, 0.01, 1);
        svm.fit(&x, &y, 2);
        let correct = x.iter().zip(&y).filter(|(xi, yi)| svm.predict(xi) == **yi).count();
        let accuracy = correct as f64 / x.len() as f64;
        assert!(accuracy < 0.75, "{correct}/80 should be near chance");
    }

    #[test]
    fn probabilities_are_softmax_normalized() {
        let (x, y) = linearly_separable(9);
        let mut svm = LinearSvmEnsemble::new(5, 0.01, 2);
        svm.fit(&x, &y, 3);
        let p = svm.predict_proba(&[1.0, 1.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn constant_features_do_not_divide_by_zero() {
        let x = vec![vec![1.0, 5.0]; 10];
        let y = vec![0usize; 10];
        let mut svm = LinearSvmEnsemble::new(2, 0.1, 1);
        svm.fit(&x, &y, 2);
        assert!(svm.predict_proba(&[1.0, 5.0]).iter().all(|p| p.is_finite()));
    }
}
