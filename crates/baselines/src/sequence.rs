//! Opcode-sequence classifier — the stand-in for the Strand gene-sequence
//! system [15] of Table IV.
//!
//! Strand classifies malware by similarity over instruction-sequence
//! "genes". Here, each ACFG is linearized in BFS order into a sequence of
//! per-block dominant instruction categories; hashed category n-grams
//! form a bag-of-genes vector that is matched against per-family
//! centroids by cosine similarity.

use magic_graph::Acfg;

/// Dimensionality of the hashed n-gram space.
const BUCKETS: usize = 256;

/// Linearizes an ACFG into its per-block dominant-category sequence.
///
/// Categories are the Table I channels 1..8 (transfer, call, arithmetic,
/// compare, mov, termination, data declaration), with 7 for "none".
pub fn category_sequence(acfg: &Acfg) -> Vec<u8> {
    let order = acfg.graph().bfs_order(0);
    order
        .into_iter()
        .map(|v| {
            let row = acfg.attributes().row(v);
            // Channels 1..=7 are the category counts.
            let mut best = 7u8;
            let mut best_count = 0.0f32;
            for (i, &c) in row[1..8].iter().enumerate() {
                if c > best_count {
                    best_count = c;
                    best = i as u8;
                }
            }
            best
        })
        .collect()
}

/// Hashed n-gram profile of a category sequence.
fn ngram_profile(seq: &[u8], n: usize) -> Vec<f64> {
    let mut profile = vec![0.0; BUCKETS];
    if seq.len() < n {
        return profile;
    }
    for window in seq.windows(n) {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in window {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        profile[(h % BUCKETS as u64) as usize] += 1.0;
    }
    // L2 normalize for cosine similarity.
    let norm: f64 = profile.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for p in &mut profile {
            *p /= norm;
        }
    }
    profile
}

/// Nearest-centroid classifier over hashed n-gram profiles.
#[derive(Debug, Clone)]
pub struct SequenceClassifier {
    ngram: usize,
    centroids: Vec<Vec<f64>>,
}

impl SequenceClassifier {
    /// Creates an unfitted classifier over `ngram`-grams.
    ///
    /// # Panics
    ///
    /// Panics if `ngram == 0`.
    pub fn new(ngram: usize) -> Self {
        assert!(ngram > 0, "n-gram width must be positive");
        SequenceClassifier { ngram, centroids: Vec::new() }
    }

    /// Fits family centroids from labeled ACFGs.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent input.
    pub fn fit(&mut self, acfgs: &[&Acfg], labels: &[usize], num_classes: usize) {
        assert_eq!(acfgs.len(), labels.len(), "one label per graph");
        let mut centroids = vec![vec![0.0; BUCKETS]; num_classes];
        let mut counts = vec![0usize; num_classes];
        for (acfg, &label) in acfgs.iter().zip(labels) {
            let profile = ngram_profile(&category_sequence(acfg), self.ngram);
            for (c, p) in centroids[label].iter_mut().zip(&profile) {
                *c += p;
            }
            counts[label] += 1;
        }
        for (centroid, count) in centroids.iter_mut().zip(&counts) {
            let norm: f64 = centroid.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 0.0 && *count > 0 {
                for c in centroid.iter_mut() {
                    *c /= norm;
                }
            }
        }
        self.centroids = centroids;
    }

    /// Cosine similarities to every family centroid, softmax-normalized
    /// into pseudo-probabilities.
    pub fn predict_proba(&self, acfg: &Acfg) -> Vec<f64> {
        assert!(!self.centroids.is_empty(), "sequence classifier is not fitted");
        let profile = ngram_profile(&category_sequence(acfg), self.ngram);
        let sims: Vec<f64> = self
            .centroids
            .iter()
            .map(|c| c.iter().zip(&profile).map(|(a, b)| a * b).sum::<f64>())
            .collect();
        // Sharpened softmax over similarities.
        let m = sims.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = sims.iter().map(|s| ((s - m) * 8.0).exp()).collect();
        let total: f64 = exps.iter().sum();
        exps.iter().map(|e| e / total).collect()
    }

    /// Most similar family.
    pub fn predict(&self, acfg: &Acfg) -> usize {
        self.predict_proba(acfg)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_graph::{DiGraph, NUM_ATTRIBUTES};
    use magic_tensor::{Rng64, Tensor};

    /// Builds an ACFG whose blocks are dominated by `category`.
    fn mono_acfg(category: usize, n: usize, seed: u64) -> Acfg {
        let mut rng = Rng64::new(seed);
        let mut g = DiGraph::new(n);
        for v in 0..n - 1 {
            g.add_edge(v, v + 1);
        }
        let mut attrs = Tensor::zeros([n, NUM_ATTRIBUTES]);
        for v in 0..n {
            attrs.set2(v, category, 3.0 + rng.next_below(3) as f32);
            attrs.set2(v, 8, 5.0);
            attrs.set2(v, 10, 5.0);
        }
        Acfg::new(g, attrs)
    }

    #[test]
    fn category_sequence_picks_dominant_channel() {
        let acfg = mono_acfg(3, 5, 1); // arithmetic-dominant
        let seq = category_sequence(&acfg);
        assert_eq!(seq.len(), 5);
        // Channel 3 is index 2 within the 1..8 category window.
        assert!(seq.iter().all(|&c| c == 2));
    }

    #[test]
    fn classifier_separates_category_dominated_families() {
        let class0: Vec<Acfg> = (0..8).map(|i| mono_acfg(3, 10, i)).collect();
        let class1: Vec<Acfg> = (0..8).map(|i| mono_acfg(5, 10, 100 + i)).collect();
        let refs: Vec<&Acfg> = class0.iter().chain(class1.iter()).collect();
        let labels: Vec<usize> = (0..16).map(|i| i / 8).collect();
        let mut clf = SequenceClassifier::new(3);
        clf.fit(&refs, &labels, 2);
        assert_eq!(clf.predict(&mono_acfg(3, 10, 999)), 0);
        assert_eq!(clf.predict(&mono_acfg(5, 10, 998)), 1);
    }

    #[test]
    fn proba_is_normalized() {
        let class0 = mono_acfg(1, 6, 0);
        let mut clf = SequenceClassifier::new(2);
        clf.fit(&[&class0], &[0], 2);
        let p = clf.predict_proba(&class0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn short_sequences_do_not_panic() {
        let tiny = mono_acfg(2, 2, 4);
        let mut clf = SequenceClassifier::new(5);
        clf.fit(&[&tiny], &[0], 1);
        assert_eq!(clf.predict(&tiny), 0);
    }
}
