//! Multiclass gradient boosting over regression trees — the stand-in for
//! "XGBoost with heavy feature engineering" [13], Table IV's strongest
//! baseline.

use crate::tree::RegressionTree;
use crate::Classifier;
use magic_tensor::Rng64;

/// Softmax gradient-boosted trees: each round fits one regression tree
/// per class to the negative log-loss gradient `y_ic - p_ic`, applied
/// with shrinkage.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    rounds: usize,
    max_depth: usize,
    learning_rate: f64,
    seed: u64,
    // trees[round][class]
    trees: Vec<Vec<RegressionTree>>,
    num_classes: usize,
}

impl GradientBoosting {
    /// Creates an unfitted booster.
    ///
    /// # Panics
    ///
    /// Panics on zero rounds or a non-positive learning rate.
    pub fn new(rounds: usize, max_depth: usize, learning_rate: f64, seed: u64) -> Self {
        assert!(rounds > 0, "need at least one boosting round");
        assert!(learning_rate > 0.0, "learning rate must be positive");
        GradientBoosting {
            rounds,
            max_depth,
            learning_rate,
            seed,
            trees: Vec::new(),
            num_classes: 0,
        }
    }

    fn raw_scores(&self, x: &[f64]) -> Vec<f64> {
        let mut scores = vec![0.0; self.num_classes];
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                scores[c] += self.learning_rate * tree.predict(x);
            }
        }
        scores
    }

    fn softmax(scores: &[f64]) -> Vec<f64> {
        let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = scores.iter().map(|s| (s - m).exp()).collect();
        let total: f64 = exps.iter().sum();
        exps.iter().map(|e| e / total).collect()
    }
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], num_classes: usize) {
        assert!(!x.is_empty(), "cannot fit on empty data");
        assert_eq!(x.len(), y.len(), "one label per row");
        self.num_classes = num_classes;
        self.trees.clear();
        let mut rng = Rng64::new(self.seed);

        // Current raw scores per sample per class.
        let mut scores = vec![vec![0.0f64; num_classes]; x.len()];
        for _ in 0..self.rounds {
            let mut round = Vec::with_capacity(num_classes);
            // Compute softmax probabilities for the current ensemble.
            let probs: Vec<Vec<f64>> = scores.iter().map(|s| Self::softmax(s)).collect();
            for c in 0..num_classes {
                // Negative gradient of the log loss wrt class-c score.
                let residuals: Vec<f64> = probs
                    .iter()
                    .zip(y)
                    .map(|(p, &yi)| (if yi == c { 1.0 } else { 0.0 }) - p[c])
                    .collect();
                let mut tree = RegressionTree::new(self.max_depth, 4);
                tree.fit(x, &residuals, &mut rng);
                for (i, xi) in x.iter().enumerate() {
                    scores[i][c] += self.learning_rate * tree.predict(xi);
                }
                round.push(tree);
            }
            self.trees.push(round);
        }
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "booster is not fitted");
        Self::softmax(&self.raw_scores(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rings(seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        // Class by radius: a problem linear models cannot solve.
        let mut rng = Rng64::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let r = if i % 2 == 0 { 1.0 } else { 3.0 };
            let theta = rng.next_f64() * std::f64::consts::TAU;
            x.push(vec![r * theta.cos(), r * theta.sin()]);
            y.push(i % 2);
        }
        (x, y)
    }

    #[test]
    fn boosting_solves_rings() {
        let (x, y) = rings(1);
        let mut gb = GradientBoosting::new(20, 3, 0.3, 7);
        gb.fit(&x, &y, 2);
        let correct = x.iter().zip(&y).filter(|(xi, yi)| gb.predict(xi) == **yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.95, "{correct}/60");
    }

    #[test]
    fn more_rounds_reduce_training_loss() {
        let (x, y) = rings(2);
        let loss = |rounds: usize| {
            let mut gb = GradientBoosting::new(rounds, 2, 0.2, 3);
            gb.fit(&x, &y, 2);
            let mut total = 0.0;
            for (xi, &yi) in x.iter().zip(&y) {
                total -= gb.predict_proba(xi)[yi].max(1e-15).ln();
            }
            total / x.len() as f64
        };
        assert!(loss(15) < loss(2));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = rings(3);
        let mut gb = GradientBoosting::new(5, 2, 0.3, 1);
        gb.fit(&x, &y, 2);
        let p = gb.predict_proba(&[0.5, 0.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn three_class_problems_work() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![(i / 10) as f64 * 2.0]).collect();
        let y: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let mut gb = GradientBoosting::new(10, 2, 0.5, 5);
        gb.fit(&x, &y, 3);
        assert_eq!(gb.predict(&[0.0]), 0);
        assert_eq!(gb.predict(&[2.0]), 1);
        assert_eq!(gb.predict(&[4.0]), 2);
    }
}
