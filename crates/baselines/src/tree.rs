//! CART decision and regression trees: the shared substrate of the
//! random forest and gradient boosting baselines.

use magic_tensor::Rng64;

/// A binary split: `feature <= threshold` goes left.
#[derive(Debug, Clone, PartialEq)]
struct Split {
    feature: usize,
    threshold: f64,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { value: Vec<f64> },
    Internal { split: Split, left: usize, right: usize },
}

/// Shared tree storage: nodes in a flat arena.
#[derive(Debug, Clone, Default)]
struct Arena {
    nodes: Vec<Node>,
}

impl Arena {
    fn predict(&self, x: &[f64]) -> &[f64] {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return value,
                Node::Internal { split, left, right } => {
                    cur = if x[split.feature] <= split.threshold { *left } else { *right };
                }
            }
        }
    }
}

/// Split-finding configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct GrowConfig {
    pub max_depth: usize,
    pub min_samples_split: usize,
    /// Number of candidate features per split (`0` = all).
    pub feature_subsample: usize,
}

/// Finds the best split of `idx` by the supplied impurity function.
/// `impurity(indices)` must return the weighted impurity of a candidate
/// child partition. Returns `None` when no split improves.
fn best_split(
    x: &[Vec<f64>],
    idx: &[usize],
    candidates: &[usize],
    score: &mut dyn FnMut(&[usize], &[usize]) -> f64,
) -> Option<(Split, Vec<usize>, Vec<usize>)> {
    let mut best: Option<(f64, Split)> = None;
    for &feature in candidates {
        // Sort indices by the feature value; evaluate midpoints between
        // distinct consecutive values.
        let mut sorted: Vec<usize> = idx.to_vec();
        sorted.sort_by(|&a, &b| {
            x[a][feature]
                .partial_cmp(&x[b][feature])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for w in 1..sorted.len() {
            let lo = x[sorted[w - 1]][feature];
            let hi = x[sorted[w]][feature];
            if hi <= lo {
                continue;
            }
            let threshold = (lo + hi) / 2.0;
            let (left, right) = sorted.split_at(w);
            let s = score(left, right);
            if best.as_ref().is_none_or(|(b, _)| s < *b) {
                best = Some((s, Split { feature, threshold }));
            }
        }
    }
    let (_, split) = best?;
    let (mut left, mut right) = (Vec::new(), Vec::new());
    for &i in idx {
        if x[i][split.feature] <= split.threshold {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    if left.is_empty() || right.is_empty() {
        return None;
    }
    Some((split, left, right))
}

fn pick_candidates(num_features: usize, config: GrowConfig, rng: &mut Rng64) -> Vec<usize> {
    if config.feature_subsample == 0 || config.feature_subsample >= num_features {
        (0..num_features).collect()
    } else {
        let mut all: Vec<usize> = (0..num_features).collect();
        rng.shuffle(&mut all);
        all.truncate(config.feature_subsample);
        all
    }
}

/// A Gini-impurity classification tree (CART).
///
/// Leaves store class probability distributions.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    arena: Arena,
    config: GrowConfig,
    num_classes: usize,
}

impl DecisionTree {
    /// Creates an unfitted tree.
    pub fn new(max_depth: usize, min_samples_split: usize) -> Self {
        DecisionTree {
            arena: Arena::default(),
            config: GrowConfig { max_depth, min_samples_split, feature_subsample: 0 },
            num_classes: 0,
        }
    }

    pub(crate) fn with_feature_subsample(mut self, m: usize) -> Self {
        self.config.feature_subsample = m;
        self
    }

    /// Fits on `(x, y)`; `rng` drives feature subsampling (pass any seed
    /// when subsampling is off).
    ///
    /// # Panics
    ///
    /// Panics on empty input or label/feature inconsistencies.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[usize], num_classes: usize, rng: &mut Rng64) {
        assert!(!x.is_empty(), "cannot fit on empty data");
        assert_eq!(x.len(), y.len(), "one label per row");
        self.num_classes = num_classes;
        self.arena = Arena::default();
        let idx: Vec<usize> = (0..x.len()).collect();
        self.grow(x, y, &idx, 0, rng);
    }

    fn class_distribution(&self, y: &[usize], idx: &[usize]) -> Vec<f64> {
        let mut dist = vec![0.0; self.num_classes];
        for &i in idx {
            dist[y[i]] += 1.0;
        }
        let total: f64 = dist.iter().sum();
        if total > 0.0 {
            for d in &mut dist {
                *d /= total;
            }
        }
        dist
    }

    fn gini(&self, y: &[usize], idx: &[usize]) -> f64 {
        let dist = self.class_distribution(y, idx);
        1.0 - dist.iter().map(|p| p * p).sum::<f64>()
    }

    fn grow(&mut self, x: &[Vec<f64>], y: &[usize], idx: &[usize], depth: usize, rng: &mut Rng64) -> usize {
        let make_leaf = |tree: &mut Self| {
            let value = tree.class_distribution(y, idx);
            tree.arena.nodes.push(Node::Leaf { value });
            tree.arena.nodes.len() - 1
        };
        if depth >= self.config.max_depth
            || idx.len() < self.config.min_samples_split
            || self.gini(y, idx) == 0.0
        {
            return make_leaf(self);
        }
        let candidates = pick_candidates(x[0].len(), self.config, rng);
        let mut score = |l: &[usize], r: &[usize]| {
            let n = (l.len() + r.len()) as f64;
            self.gini(y, l) * l.len() as f64 / n + self.gini(y, r) * r.len() as f64 / n
        };
        match best_split(x, idx, &candidates, &mut score) {
            None => make_leaf(self),
            Some((split, left_idx, right_idx)) => {
                // Reserve our slot before growing children.
                self.arena.nodes.push(Node::Leaf { value: Vec::new() });
                let slot = self.arena.nodes.len() - 1;
                let left = self.grow(x, y, &left_idx, depth + 1, rng);
                let right = self.grow(x, y, &right_idx, depth + 1, rng);
                self.arena.nodes[slot] = Node::Internal { split, left, right };
                slot
            }
        }
    }

    /// Class probability distribution for one sample.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert!(!self.arena.nodes.is_empty(), "tree is not fitted");
        self.arena.predict(x).to_vec()
    }

    /// Most probable class for one sample.
    pub fn predict(&self, x: &[f64]) -> usize {
        let p = self.predict_proba(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// A variance-reduction regression tree, used as the weak learner of
/// [`crate::GradientBoosting`].
#[derive(Debug, Clone)]
pub struct RegressionTree {
    arena: Arena,
    config: GrowConfig,
}

impl RegressionTree {
    /// Creates an unfitted tree.
    pub fn new(max_depth: usize, min_samples_split: usize) -> Self {
        RegressionTree {
            arena: Arena::default(),
            config: GrowConfig { max_depth, min_samples_split, feature_subsample: 0 },
        }
    }

    /// Fits on `(x, targets)` minimizing squared error.
    ///
    /// # Panics
    ///
    /// Panics on empty or inconsistent input.
    pub fn fit(&mut self, x: &[Vec<f64>], targets: &[f64], rng: &mut Rng64) {
        assert!(!x.is_empty(), "cannot fit on empty data");
        assert_eq!(x.len(), targets.len(), "one target per row");
        self.arena = Arena::default();
        let idx: Vec<usize> = (0..x.len()).collect();
        self.grow(x, targets, &idx, 0, rng);
    }

    fn sse(targets: &[f64], idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        let mean: f64 = idx.iter().map(|&i| targets[i]).sum::<f64>() / idx.len() as f64;
        idx.iter().map(|&i| (targets[i] - mean).powi(2)).sum()
    }

    fn grow(&mut self, x: &[Vec<f64>], targets: &[f64], idx: &[usize], depth: usize, rng: &mut Rng64) -> usize {
        let make_leaf = |tree: &mut Self| {
            let mean: f64 = idx.iter().map(|&i| targets[i]).sum::<f64>() / idx.len().max(1) as f64;
            tree.arena.nodes.push(Node::Leaf { value: vec![mean] });
            tree.arena.nodes.len() - 1
        };
        if depth >= self.config.max_depth
            || idx.len() < self.config.min_samples_split
            || Self::sse(targets, idx) < 1e-12
        {
            return make_leaf(self);
        }
        let candidates = pick_candidates(x[0].len(), self.config, rng);
        let mut score = |l: &[usize], r: &[usize]| Self::sse(targets, l) + Self::sse(targets, r);
        match best_split(x, idx, &candidates, &mut score) {
            None => make_leaf(self),
            Some((split, left_idx, right_idx)) => {
                self.arena.nodes.push(Node::Leaf { value: Vec::new() });
                let slot = self.arena.nodes.len() - 1;
                let left = self.grow(x, targets, &left_idx, depth + 1, rng);
                let right = self.grow(x, targets, &right_idx, depth + 1, rng);
                self.arena.nodes[slot] = Node::Internal { split, left, right };
                slot
            }
        }
    }

    /// Predicted value for one sample.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert!(!self.arena.nodes.is_empty(), "tree is not fitted");
        self.arena.predict(x)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..5 {
                    x.push(vec![a as f64, b as f64]);
                    y.push(a ^ b);
                }
            }
        }
        (x, y)
    }

    #[test]
    fn decision_tree_learns_xor() {
        let (x, y) = xor_data();
        let mut tree = DecisionTree::new(4, 2);
        tree.fit(&x, &y, 2, &mut Rng64::new(0));
        for (xi, yi) in x.iter().zip(&y) {
            assert_eq!(tree.predict(xi), *yi);
        }
    }

    #[test]
    fn decision_tree_respects_max_depth() {
        let (x, y) = xor_data();
        let mut stump = DecisionTree::new(1, 2);
        stump.fit(&x, &y, 2, &mut Rng64::new(0));
        // A depth-1 stump cannot solve XOR.
        let errors = x.iter().zip(&y).filter(|(xi, yi)| stump.predict(xi) != **yi).count();
        assert!(errors > 0);
    }

    #[test]
    fn proba_leaves_sum_to_one() {
        let (x, y) = xor_data();
        let mut tree = DecisionTree::new(4, 2);
        tree.fit(&x, &y, 2, &mut Rng64::new(0));
        let p = tree.predict_proba(&[0.0, 1.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let t: Vec<f64> = (0..20).map(|i| if i < 10 { -1.0 } else { 2.0 }).collect();
        let mut tree = RegressionTree::new(3, 2);
        tree.fit(&x, &t, &mut Rng64::new(0));
        assert!((tree.predict(&[3.0]) + 1.0).abs() < 1e-9);
        assert!((tree.predict(&[15.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let x: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let t = vec![7.0; 5];
        let mut tree = RegressionTree::new(5, 2);
        tree.fit(&x, &t, &mut Rng64::new(0));
        assert_eq!(tree.predict(&[100.0]), 7.0);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_tree_panics() {
        DecisionTree::new(3, 2).predict(&[0.0]);
    }
}
