#![warn(missing_docs)]

//! Baseline malware classifiers for the Table IV and Fig. 11 comparisons.
//!
//! The paper compares MAGIC against handcrafted-feature systems:
//! XGBoost with heavy feature engineering \[13\], random forests \[11\]\[14\],
//! an autoencoder + XGBoost hybrid \[9\], the Strand gene-sequence
//! classifier \[15\] and the ESVC chained SVM ensemble \[8\]. This crate
//! provides from-scratch members of each algorithmic class, all consuming
//! features engineered from ACFGs:
//!
//! * [`FeatureVector`] — aggregate ACFG statistics (`basic`) and a richer
//!   histogram expansion (`rich`, standing in for \[13\]'s 1800+ features).
//! * [`DecisionTree`] / [`RandomForest`] — CART with Gini splits, bagged.
//! * [`GradientBoosting`] — multiclass softmax GBM over regression trees
//!   (the XGBoost stand-in).
//! * [`LinearSvmEnsemble`] — one-vs-rest Pegasos-trained linear SVMs
//!   (the ESVC stand-in).
//! * [`SequenceClassifier`] — n-gram nearest-centroid over opcode
//!   category sequences (the Strand stand-in).
//! * [`WlKernelKnn`] — a Weisfeiler–Lehman subtree-kernel k-NN, the
//!   classical pairwise graph-similarity approach whose execution cost
//!   Section I argues against (used by the `ext_wl_kernel` experiment).
//!
//! # Example
//!
//! ```
//! use magic_baselines::{Classifier, RandomForest};
//!
//! let x = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0], vec![5.1, 4.9]];
//! let y = vec![0, 0, 1, 1];
//! let mut rf = RandomForest::new(5, 4, 42);
//! rf.fit(&x, &y, 2);
//! assert_eq!(rf.predict(&[5.05, 5.0]), 1);
//! ```

mod features;
mod forest;
mod gbdt;
mod sequence;
mod svm;
mod tree;
mod wl_kernel;

pub use features::FeatureVector;
pub use forest::RandomForest;
pub use gbdt::GradientBoosting;
pub use sequence::SequenceClassifier;
pub use svm::LinearSvmEnsemble;
pub use tree::{DecisionTree, RegressionTree};
pub use wl_kernel::{wl_features, wl_kernel, WlKernelKnn};

/// A trainable multi-class classifier over dense feature vectors.
pub trait Classifier {
    /// Fits the model. `y` values must be `< num_classes`.
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], num_classes: usize);

    /// Class probability estimates for one sample.
    fn predict_proba(&self, x: &[f64]) -> Vec<f64>;

    /// Most probable class.
    fn predict(&self, x: &[f64]) -> usize {
        let p = self.predict_proba(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}
