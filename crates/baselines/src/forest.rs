//! Random forest (the stand-in for the ensemble classifiers of [11] and
//! [14] in Table IV).

use crate::tree::DecisionTree;
use crate::Classifier;
use magic_tensor::Rng64;

/// A bagged ensemble of Gini CART trees with per-split feature
/// subsampling (√d features per split).
#[derive(Debug, Clone)]
pub struct RandomForest {
    num_trees: usize,
    max_depth: usize,
    seed: u64,
    trees: Vec<DecisionTree>,
    num_classes: usize,
}

impl RandomForest {
    /// Creates an unfitted forest of `num_trees` trees of depth
    /// `max_depth`.
    ///
    /// # Panics
    ///
    /// Panics if `num_trees == 0`.
    pub fn new(num_trees: usize, max_depth: usize, seed: u64) -> Self {
        assert!(num_trees > 0, "forest needs at least one tree");
        RandomForest { num_trees, max_depth, seed, trees: Vec::new(), num_classes: 0 }
    }

    /// Number of fitted trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest is unfitted.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], num_classes: usize) {
        assert!(!x.is_empty(), "cannot fit on empty data");
        self.num_classes = num_classes;
        self.trees.clear();
        let mut rng = Rng64::new(self.seed);
        let m = (x[0].len() as f64).sqrt().ceil() as usize;
        for _ in 0..self.num_trees {
            // Bootstrap sample.
            let mut bx = Vec::with_capacity(x.len());
            let mut by = Vec::with_capacity(x.len());
            for _ in 0..x.len() {
                let i = rng.next_below(x.len());
                bx.push(x[i].clone());
                by.push(y[i]);
            }
            let mut tree = DecisionTree::new(self.max_depth, 2).with_feature_subsample(m);
            tree.fit(&bx, &by, num_classes, &mut rng);
            self.trees.push(tree);
        }
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "forest is not fitted");
        let mut acc = vec![0.0; self.num_classes];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict_proba(x)) {
                *a += p;
            }
        }
        for a in &mut acc {
            *a /= self.trees.len() as f64;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = Rng64::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        let centers = [(0.0, 0.0), (4.0, 4.0), (0.0, 5.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                x.push(vec![
                    cx + rng.next_normal() as f64 * 0.5,
                    cy + rng.next_normal() as f64 * 0.5,
                ]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn forest_separates_blobs() {
        let (x, y) = blobs(20, 3);
        let mut rf = RandomForest::new(15, 6, 1);
        rf.fit(&x, &y, 3);
        let correct = x.iter().zip(&y).filter(|(xi, yi)| rf.predict(xi) == **yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.95);
        assert_eq!(rf.len(), 15);
    }

    #[test]
    fn probabilities_are_normalized() {
        let (x, y) = blobs(10, 5);
        let mut rf = RandomForest::new(5, 4, 2);
        rf.fit(&x, &y, 3);
        let p = rf.predict_proba(&[2.0, 2.0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn refitting_replaces_trees() {
        let (x, y) = blobs(10, 7);
        let mut rf = RandomForest::new(3, 4, 2);
        rf.fit(&x, &y, 3);
        rf.fit(&x, &y, 3);
        assert_eq!(rf.len(), 3);
    }
}
