//! Weisfeiler–Lehman subtree-kernel classifier — the graph-similarity
//! approach MAGIC is designed to outperform.
//!
//! Section I of the paper motivates DGCNN against "graph matching or
//! isomorphism [that] can be computationally prohibitive, letting alone
//! that the time needed to compute pairwise graph similarity for a
//! malware dataset scales quadratically with its size". The paper's own
//! SortPooling is grounded in WL colors [29][31]. This module implements
//! that classical alternative faithfully: WL color refinement over
//! discretized vertex attributes, an explicit subtree-feature histogram
//! per graph, and a kernel k-NN classifier whose prediction cost grows
//! linearly with the *training-set size* (the quadratic pairwise regime) —
//! the execution-performance foil for the DGCNN.

use magic_graph::Acfg;
use std::collections::HashMap;

/// Initial color of a vertex: a coarse hash of its discretized Table I
/// attribute vector (log-bucketed, so near-equal blocks share colors).
fn initial_color(acfg: &Acfg, v: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in acfg.attributes().row(v) {
        let bucket = (1.0 + x).ln().floor() as u64;
        h ^= bucket.wrapping_add(0x9E37_79B9);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The WL subtree feature map of one graph: color → multiplicity over all
/// refinement rounds (the standard WL kernel feature vector, stored
/// sparsely).
pub fn wl_features(acfg: &Acfg, rounds: usize) -> HashMap<u64, f64> {
    let n = acfg.vertex_count();
    let mut colors: Vec<u64> = (0..n).map(|v| initial_color(acfg, v)).collect();
    let mut features: HashMap<u64, f64> = HashMap::new();
    for &c in &colors {
        *features.entry(c).or_default() += 1.0;
    }
    for round in 0..rounds {
        colors = acfg.graph().wl_refine(&colors);
        for &c in &colors {
            // Salt by round so identical hashes from different depths
            // stay distinct features.
            *features.entry(c ^ (round as u64) << 56).or_default() += 1.0;
        }
    }
    features
}

/// Normalized WL kernel value between two sparse feature maps
/// (cosine of the subtree histograms).
pub fn wl_kernel(a: &HashMap<u64, f64>, b: &HashMap<u64, f64>) -> f64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dot: f64 = small
        .iter()
        .filter_map(|(k, va)| large.get(k).map(|vb| va * vb))
        .sum();
    let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// k-nearest-neighbour classifier under the WL subtree kernel.
///
/// Training memorizes feature maps (cheap); prediction computes the
/// kernel against *every* training graph — the cost profile the paper
/// argues against, reproduced here for the execution-performance
/// comparison.
#[derive(Debug, Clone)]
pub struct WlKernelKnn {
    rounds: usize,
    k: usize,
    features: Vec<HashMap<u64, f64>>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl WlKernelKnn {
    /// Creates an unfitted classifier with `rounds` WL refinements and
    /// `k` neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(rounds: usize, k: usize) -> Self {
        assert!(k > 0, "need at least one neighbour");
        WlKernelKnn { rounds, k, features: Vec::new(), labels: Vec::new(), num_classes: 0 }
    }

    /// Memorizes the training graphs' WL features.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent input.
    pub fn fit(&mut self, graphs: &[&Acfg], labels: &[usize], num_classes: usize) {
        assert_eq!(graphs.len(), labels.len(), "one label per graph");
        assert!(!graphs.is_empty(), "cannot fit on empty data");
        self.features = graphs.iter().map(|g| wl_features(g, self.rounds)).collect();
        self.labels = labels.to_vec();
        self.num_classes = num_classes;
    }

    /// Similarity-weighted class vote over the `k` nearest neighbours,
    /// normalized into pseudo-probabilities.
    pub fn predict_proba(&self, acfg: &Acfg) -> Vec<f64> {
        assert!(!self.features.is_empty(), "WL-kNN is not fitted");
        let query = wl_features(acfg, self.rounds);
        let mut sims: Vec<(f64, usize)> = self
            .features
            .iter()
            .zip(&self.labels)
            .map(|(f, &l)| (wl_kernel(&query, f), l))
            .collect();
        sims.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut votes = vec![1e-9; self.num_classes];
        for &(sim, label) in sims.iter().take(self.k) {
            votes[label] += sim.max(0.0);
        }
        let total: f64 = votes.iter().sum();
        votes.iter().map(|v| v / total).collect()
    }

    /// Most similar class.
    pub fn predict(&self, acfg: &Acfg) -> usize {
        self.predict_proba(acfg)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Number of memorized training graphs (prediction cost is linear in
    /// this).
    pub fn training_size(&self) -> usize {
        self.features.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_graph::{DiGraph, NUM_ATTRIBUTES};
    use magic_tensor::{Rng64, Tensor};

    fn chain_acfg(n: usize, attr_scale: f32, seed: u64) -> Acfg {
        let mut rng = Rng64::new(seed);
        let mut g = DiGraph::new(n);
        for v in 0..n - 1 {
            g.add_edge(v, v + 1);
        }
        let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, attr_scale, &mut rng);
        Acfg::new(g, attrs)
    }

    fn loop_acfg(n: usize, attr_scale: f32, seed: u64) -> Acfg {
        let mut rng = Rng64::new(seed);
        let mut g = DiGraph::new(n);
        for v in 0..n {
            g.add_edge(v, (v + 1) % n);
        }
        let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, attr_scale, &mut rng);
        Acfg::new(g, attrs)
    }

    #[test]
    fn kernel_of_graph_with_itself_is_one() {
        let g = chain_acfg(6, 3.0, 1);
        let f = wl_features(&g, 3);
        assert!((wl_kernel(&f, &f) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_is_symmetric_and_bounded() {
        let a = wl_features(&chain_acfg(6, 3.0, 1), 3);
        let b = wl_features(&loop_acfg(6, 3.0, 2), 3);
        let kab = wl_kernel(&a, &b);
        let kba = wl_kernel(&b, &a);
        assert!((kab - kba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&kab));
    }

    #[test]
    fn isomorphic_graphs_have_identical_features() {
        // Same chain, same attributes, vertices relabeled 0..n reversed.
        let mut g1 = DiGraph::new(4);
        g1.add_edge(0, 1);
        g1.add_edge(1, 2);
        g1.add_edge(2, 3);
        let mut g2 = DiGraph::new(4);
        g2.add_edge(3, 2);
        g2.add_edge(2, 1);
        g2.add_edge(1, 0);
        let attrs1 = Tensor::from_vec(
            (0..4 * NUM_ATTRIBUTES).map(|i| (i / NUM_ATTRIBUTES) as f32).collect(),
            [4, NUM_ATTRIBUTES],
        );
        let mut attrs2 = Tensor::zeros([4, NUM_ATTRIBUTES]);
        for v in 0..4 {
            attrs2.set_row(v, attrs1.row(3 - v));
        }
        let f1 = wl_features(&Acfg::new(g1, attrs1), 3);
        let f2 = wl_features(&Acfg::new(g2, attrs2), 3);
        assert!((wl_kernel(&f1, &f2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn knn_separates_structure_families() {
        // Family 0: chains with small attributes; family 1: cycles with
        // large attributes.
        let train: Vec<Acfg> = (0..6)
            .map(|i| chain_acfg(8, 1.0, i))
            .chain((0..6).map(|i| loop_acfg(8, 6.0, 100 + i)))
            .collect();
        let refs: Vec<&Acfg> = train.iter().collect();
        let labels: Vec<usize> = (0..12).map(|i| i / 6).collect();
        let mut knn = WlKernelKnn::new(3, 3);
        knn.fit(&refs, &labels, 2);
        assert_eq!(knn.training_size(), 12);
        assert_eq!(knn.predict(&chain_acfg(8, 1.0, 999)), 0);
        assert_eq!(knn.predict(&loop_acfg(8, 6.0, 998)), 1);
        let p = knn.predict_proba(&chain_acfg(8, 1.0, 997));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn unfitted_knn_panics() {
        WlKernelKnn::new(2, 1).predict(&chain_acfg(3, 1.0, 0));
    }
}
