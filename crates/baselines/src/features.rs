//! Handcrafted feature engineering over ACFGs.

use magic_graph::{Acfg, GraphStats, NUM_ATTRIBUTES};

/// Feature extraction for the baseline classifiers.
///
/// `basic` aggregates each Table I attribute over the graph (sum, mean,
/// max) plus structural statistics — the kind of features \[11\] and \[14\]
/// hand-craft. `rich` further appends per-attribute 6-bucket histograms
/// and pairwise ratios, a stand-in for the 1800+-feature pipeline of
/// \[13\].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureVector {
    /// Aggregates + structure (about 45 dimensions).
    Basic,
    /// `Basic` plus histograms and ratios (about 120 dimensions).
    Rich,
}

impl FeatureVector {
    /// Extracts the feature vector for one ACFG.
    pub fn extract(self, acfg: &Acfg) -> Vec<f64> {
        let mut out = basic_features(acfg);
        if self == FeatureVector::Rich {
            out.extend(histogram_features(acfg));
            out.extend(ratio_features(acfg));
        }
        out
    }

    /// Dimensionality of the extracted vectors.
    pub fn len(self) -> usize {
        match self {
            FeatureVector::Basic => 3 * NUM_ATTRIBUTES + 6 + 6,
            FeatureVector::Rich => {
                3 * NUM_ATTRIBUTES + 6 + 6 + 6 * NUM_ATTRIBUTES + NUM_ATTRIBUTES
            }
        }
    }

    /// Whether the vector has zero length (never; present for API
    /// completeness).
    pub fn is_empty(self) -> bool {
        false
    }
}

fn basic_features(acfg: &Acfg) -> Vec<f64> {
    let n = acfg.vertex_count().max(1) as f64;
    let attrs = acfg.attributes();
    let mut out = Vec::with_capacity(3 * NUM_ATTRIBUTES + 12);
    // Per-attribute sum, mean, max.
    for c in 0..NUM_ATTRIBUTES {
        let mut sum = 0.0f64;
        let mut max = 0.0f64;
        for v in 0..acfg.vertex_count() {
            let x = attrs.get2(v, c) as f64;
            sum += x;
            max = max.max(x);
        }
        out.push((1.0 + sum).ln());
        out.push(sum / n);
        out.push((1.0 + max).ln());
    }
    // Structure.
    let stats = GraphStats::of(acfg);
    out.push((1.0 + stats.vertices as f64).ln());
    out.push((1.0 + stats.edges as f64).ln());
    out.push(stats.avg_out_degree);
    out.push((1.0 + stats.max_out_degree as f64).ln());
    out.push(stats.density);
    out.push(stats.entry_coverage);
    // Out-degree histogram (0, 1, 2, 3, 4, 5+), normalized.
    let mut hist = [0.0f64; 6];
    for v in 0..acfg.vertex_count() {
        let d = acfg.graph().out_degree(v).min(5);
        hist[d] += 1.0;
    }
    for h in hist {
        out.push(h / n);
    }
    out
}

fn histogram_features(acfg: &Acfg) -> Vec<f64> {
    // Six log-scaled buckets per attribute: 0, 1-2, 3-5, 6-10, 11-20, 21+.
    let edges = [0.5, 2.5, 5.5, 10.5, 20.5];
    let n = acfg.vertex_count().max(1) as f64;
    let mut out = Vec::with_capacity(6 * NUM_ATTRIBUTES);
    for c in 0..NUM_ATTRIBUTES {
        let mut hist = [0.0f64; 6];
        for v in 0..acfg.vertex_count() {
            let x = acfg.attributes().get2(v, c) as f64;
            let bucket = edges.iter().position(|&e| x <= e).unwrap_or(5);
            hist[bucket] += 1.0;
        }
        out.extend(hist.iter().map(|h| h / n));
    }
    out
}

fn ratio_features(acfg: &Acfg) -> Vec<f64> {
    // Each attribute total relative to the total instruction count.
    let sums = acfg.attributes().sum_rows();
    let total_instr = sums[8].max(1.0) as f64;
    sums.iter().map(|&s| s as f64 / total_instr).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_graph::DiGraph;
    use magic_tensor::Tensor;

    fn sample() -> Acfg {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let mut attrs = Tensor::zeros([3, NUM_ATTRIBUTES]);
        for v in 0..3 {
            attrs.set2(v, 8, 4.0); // total instructions
            attrs.set2(v, 3, 2.0); // arithmetic
        }
        Acfg::new(g, attrs)
    }

    #[test]
    fn extracted_length_matches_declared() {
        let acfg = sample();
        assert_eq!(FeatureVector::Basic.extract(&acfg).len(), FeatureVector::Basic.len());
        assert_eq!(FeatureVector::Rich.extract(&acfg).len(), FeatureVector::Rich.len());
    }

    #[test]
    fn rich_extends_basic() {
        let acfg = sample();
        let basic = FeatureVector::Basic.extract(&acfg);
        let rich = FeatureVector::Rich.extract(&acfg);
        assert_eq!(&rich[..basic.len()], &basic[..]);
        assert!(rich.len() > basic.len());
    }

    #[test]
    fn features_are_finite_on_degenerate_graphs() {
        let acfg = Acfg::new(DiGraph::new(1), Tensor::zeros([1, NUM_ATTRIBUTES]));
        for f in FeatureVector::Rich.extract(&acfg) {
            assert!(f.is_finite());
        }
    }

    #[test]
    fn arithmetic_ratio_is_captured() {
        let acfg = sample();
        let rich = FeatureVector::Rich.extract(&acfg);
        // Ratio block is the last NUM_ATTRIBUTES entries; arithmetic (ch 3)
        // should be 6/12 = 0.5 of total instructions.
        let ratios = &rich[rich.len() - NUM_ATTRIBUTES..];
        assert!((ratios[3] - 0.5).abs() < 1e-9);
    }
}
