#![warn(missing_docs)]

//! A dependency-free micro-benchmark harness with a Criterion-shaped API.
//!
//! The build environment is fully offline, so the workspace's benches
//! cannot pull in `criterion`. This crate provides the subset of its
//! surface the benches use — [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! warm-up + sampled-median measurement loop.
//!
//! Beyond the Criterion facade it also exposes the measurement core
//! directly ([`time_fn`] and [`Stats`]) so experiment binaries can embed
//! timings in their JSON result records.

use std::time::{Duration, Instant};

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Median of the per-sample means.
    pub median_ns: f64,
    /// Mean across all samples.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

impl Stats {
    /// Median time per iteration in seconds.
    pub fn median_secs(&self) -> f64 {
        self.median_ns / 1e9
    }
}

/// Measures `f`, returning per-iteration statistics.
///
/// Warm-up runs for `warm_up`, then the iteration count per sample is
/// calibrated so each sample lasts roughly `measurement / samples`, and
/// `samples` timed samples are collected.
pub fn time_fn(
    mut f: impl FnMut(),
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
) -> Stats {
    let samples = samples.max(2);
    // Warm-up, timing a single iteration as we go to calibrate.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warm_up {
        f();
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let target_sample = measurement.as_secs_f64() / samples as f64;
    let iters_per_sample = ((target_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut sample_means = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters_per_sample {
            f();
        }
        let elapsed = start.elapsed().as_secs_f64();
        sample_means.push(elapsed * 1e9 / iters_per_sample as f64);
    }
    sample_means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median_ns = if sample_means.len() % 2 == 1 {
        sample_means[sample_means.len() / 2]
    } else {
        let hi = sample_means.len() / 2;
        (sample_means[hi - 1] + sample_means[hi]) / 2.0
    };
    Stats {
        median_ns,
        mean_ns: sample_means.iter().sum::<f64>() / sample_means.len() as f64,
        min_ns: sample_means[0],
        max_ns: *sample_means.last().expect("non-empty"),
        samples: sample_means.len(),
        iters_per_sample,
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The top-level harness handle passed to each benchmark function.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            // Criterion defaults to 3 s / 5 s; the benches here train
            // networks, so keep the envelope tighter by default. The
            // per-group sample_size() calls still scale work up or down.
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            throughput: None,
        }
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `new("forward", 64)` renders as `forward/64`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { text: format!("{}/{parameter}", function.into()) }
    }
}

/// A group of benchmarks sharing configuration, mirroring Criterion's
/// `BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares per-iteration throughput, reported after the timing.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark closure under this group's configuration.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = id.into_benchmark_id();
        self.run(&label, f);
        self
    }

    /// Runs a benchmark closure that also receives a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = id.into_benchmark_id();
        self.run(&label, |b| f(b, input));
        self
    }

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let samples = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        let mut bencher = Bencher {
            samples,
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            stats: None,
        };
        f(&mut bencher);
        match bencher.stats {
            Some(stats) => {
                let mut line = format!(
                    "{}/{label}  time: [{} {} {}]",
                    self.name,
                    format_ns(stats.min_ns),
                    format_ns(stats.median_ns),
                    format_ns(stats.max_ns),
                );
                if let Some(Throughput::Elements(n)) = self.throughput {
                    let per_sec = n as f64 / stats.median_secs();
                    line.push_str(&format!("  thrpt: {per_sec:.1} elem/s"));
                }
                if let Some(Throughput::Bytes(n)) = self.throughput {
                    let per_sec = n as f64 / stats.median_secs();
                    line.push_str(&format!("  thrpt: {:.1} MiB/s", per_sec / (1024.0 * 1024.0)));
                }
                println!("{line}");
            }
            None => println!("{}/{label}  (no measurement: iter was never called)", self.name),
        }
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

/// Conversion into the printable benchmark label; accepts both plain
/// strings and [`BenchmarkId`] like Criterion does.
pub trait IntoBenchmarkId {
    /// Renders the label text.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] runs the timing
/// loop.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    stats: Option<Stats>,
}

impl Bencher {
    /// Times `routine`, retaining its output so the optimizer cannot
    /// delete the computation.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let stats = time_fn(
            || {
                std::hint::black_box(routine());
            },
            self.samples,
            self.warm_up,
            self.measurement,
        );
        self.stats = Some(stats);
    }

    /// The statistics recorded by the last [`Bencher::iter`] call.
    pub fn last_stats(&self) -> Option<Stats> {
        self.stats
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_fn_returns_ordered_stats() {
        let mut counter = 0u64;
        let stats = time_fn(
            || counter = std::hint::black_box(counter.wrapping_add(1)),
            5,
            Duration::from_millis(5),
            Duration::from_millis(20),
        );
        assert_eq!(stats.samples, 5);
        assert!(stats.min_ns <= stats.median_ns);
        assert!(stats.median_ns <= stats.max_ns);
        assert!(stats.min_ns > 0.0);
    }

    #[test]
    fn group_runs_benchmarks_and_records_stats() {
        let mut c = Criterion {
            default_sample_size: 3,
            warm_up: Duration::from_millis(2),
            measurement: Duration::from_millis(10),
        };
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.throughput(Throughput::Elements(4));
        let mut ran = false;
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| std::hint::black_box(2 + 2));
            ran = b.last_stats().is_some();
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("forward", 64).into_benchmark_id(), "forward/64");
    }
}
