//! The process-global telemetry runtime: recorder installation, the
//! zero-cost-when-disabled fast path, span guards, and stderr logging.
//!
//! # Cost model
//!
//! Every instrumentation entry point ([`span`], [`counter`],
//! [`histogram`]) first loads one relaxed [`AtomicBool`]. With no
//! recorder installed that load is the *entire* cost — no clock read, no
//! allocation, no lock — so instrumented code paths are free to call
//! these functions unconditionally, even per sample.

use crate::event::Event;
use crate::recorder::Recorder;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);
/// Set once, by the first `install` of the process; all timestamps are
/// measured from here so events across recorders stay comparable.
static TRACE_EPOCH: OnceLock<Instant> = OnceLock::new();
static LOG_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

thread_local! {
    /// Open spans on this thread, innermost last — gives `SpanStart`
    /// events their `parent` link.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Verbosity of stderr progress logging (`--log-level` on the CLI).
///
/// Ordered: every level includes the ones before it, and [`Level::Off`]
/// silences everything. This gates only human-readable stderr lines —
/// trace *events* are controlled by installing or not installing a
/// recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// No stderr output at all.
    Off = 0,
    /// Failures only.
    Error = 1,
    /// High-level progress (the default): corpus sizes, final metrics.
    Info = 2,
    /// Per-epoch training statistics.
    Debug = 3,
    /// Everything, including per-stage notes.
    Trace = 4,
}

impl std::str::FromStr for Level {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(Level::Off),
            "error" => Ok(Level::Error),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!("unknown log level {other:?} (off|error|info|debug|trace)")),
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        })
    }
}

/// Sets the global stderr log level.
pub fn set_log_level(level: Level) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current stderr log level.
pub fn log_level() -> Level {
    match LOG_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Error,
        2 => Level::Info,
        3 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Whether a message at `level` would currently print — use to skip
/// building expensive log strings.
pub fn log_enabled(level: Level) -> bool {
    level != Level::Off && level <= log_level()
}

/// Prints `message` to stderr if the global level admits it.
pub fn log(level: Level, message: impl AsRef<str>) {
    if log_enabled(level) {
        eprintln!("{}", message.as_ref());
    }
}

/// Installs `recorder` as the process-global event sink and enables the
/// instrumentation fast path. Replaces any previous recorder (the old
/// one is flushed).
pub fn install(recorder: Arc<dyn Recorder>) {
    TRACE_EPOCH.get_or_init(Instant::now);
    let previous = RECORDER.write().expect("unpoisoned recorder slot").replace(recorder);
    ENABLED.store(true, Ordering::SeqCst);
    if let Some(old) = previous {
        old.flush();
    }
}

/// Disables instrumentation and drops the global recorder, flushing it
/// first. Safe to call when nothing is installed.
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    let previous = RECORDER.write().expect("unpoisoned recorder slot").take();
    if let Some(old) = previous {
        old.flush();
    }
}

/// Whether a recorder is installed. The one-atomic-load fast path.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flushes the installed recorder, if any.
pub fn flush() {
    if let Some(recorder) = RECORDER.read().expect("unpoisoned recorder slot").as_ref() {
        recorder.flush();
    }
}

/// Microseconds since the trace epoch (0 before the first install).
fn now_us() -> u64 {
    TRACE_EPOCH.get().map_or(0, |epoch| epoch.elapsed().as_micros() as u64)
}

/// Sends one event to the installed recorder; a no-op when disabled.
pub fn record(event: &Event) {
    if !is_enabled() {
        return;
    }
    if let Some(recorder) = RECORDER.read().expect("unpoisoned recorder slot").as_ref() {
        recorder.record(event);
    }
}

/// Emits the stream-header [`Event::Meta`] describing the command that
/// produces the trace.
pub fn meta(command: impl Into<String>) {
    if is_enabled() {
        record(&Event::Meta { command: command.into() });
    }
}

/// An RAII guard for one pipeline stage: emits `span_start` on creation
/// (via [`span`]/[`span_fields`]) and `span_end` with the monotonic
/// elapsed time when dropped. Guards close in drop order, so nested
/// stages nest LIFO per thread.
#[derive(Debug)]
#[must_use = "a span measures the scope it is held in"]
pub struct Span {
    id: u64,
    stage: &'static str,
    start: Option<Instant>,
}

/// Opens a span for `stage` (a name from [`crate::stage`]).
pub fn span(stage: &'static str) -> Span {
    span_fields(stage, &[])
}

/// Opens a span with numeric annotations, e.g.
/// `span_fields(stage::TRAIN_EPOCH, &[("epoch", 3.0)])`.
pub fn span_fields(stage: &'static str, fields: &[(&str, f64)]) -> Span {
    if !is_enabled() {
        return Span { id: 0, stage, start: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    record(&Event::SpanStart {
        id,
        parent,
        stage: stage.to_string(),
        ts_us: now_us(),
        fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
    });
    Span { id, stage, start: Some(Instant::now()) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards drop LIFO, so the top of the stack is this span;
            // `retain` covers a guard moved across an early return.
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else {
                stack.retain(|&open| open != self.id);
            }
        });
        record(&Event::SpanEnd {
            id: self.id,
            stage: self.stage.to_string(),
            ts_us: now_us(),
            dur_us: start.elapsed().as_micros() as u64,
        });
    }
}

/// Adds `delta` to the counter `name`.
pub fn counter(name: &'static str, delta: f64) {
    if is_enabled() {
        record(&Event::Counter { name: name.to_string(), ts_us: now_us(), delta });
    }
}

/// Records one observation of the distribution `name`.
pub fn histogram(name: &'static str, value: f64) {
    histogram_fields(name, value, &[]);
}

/// Records one observation with numeric annotations, e.g.
/// `histogram_fields(stage::H_WORKER_BUSY_US, busy, &[("worker", 1.0)])`.
pub fn histogram_fields(name: &'static str, value: f64, fields: &[(&str, f64)]) {
    if is_enabled() {
        record(&Event::Histogram {
            name: name.to_string(),
            ts_us: now_us(),
            value,
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }
}

/// Flushes one aggregated per-op profiling row (schema v2 `op_profile`
/// event). Called by the trainer at epoch boundaries with the drained
/// tape profiles; `kind`/`phase`/`shape_class` follow the op-kind
/// registry in `docs/OBSERVABILITY.md`.
#[allow(clippy::too_many_arguments)]
pub fn op_profile(
    kind: &str,
    phase: &str,
    shape_class: &str,
    calls: u64,
    self_ns: u64,
    flops: u64,
    bytes_out: u64,
    fields: &[(&str, f64)],
) {
    if is_enabled() {
        record(&Event::OpProfile {
            kind: kind.to_string(),
            phase: phase.to_string(),
            shape_class: shape_class.to_string(),
            ts_us: now_us(),
            calls,
            self_ns,
            flops,
            bytes_out,
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests that install a global recorder must not interleave.
    static GLOBAL: Mutex<()> = Mutex::new(());

    /// Collects events in memory for assertions.
    #[derive(Default)]
    struct VecRecorder(Mutex<Vec<Event>>);

    impl Recorder for VecRecorder {
        fn record(&self, event: &Event) {
            self.0.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn disabled_runtime_records_nothing_and_allocates_no_ids() {
        let _guard = GLOBAL.lock().unwrap();
        uninstall();
        let before = NEXT_SPAN_ID.load(Ordering::Relaxed);
        {
            let _span = span("asm.parse");
            counter("asm.instructions", 3.0);
            histogram("train.worker_busy_us", 1.0);
        }
        assert_eq!(NEXT_SPAN_ID.load(Ordering::Relaxed), before);
        assert!(!is_enabled());
    }

    #[test]
    fn nested_spans_link_parents_and_close_lifo() {
        let _guard = GLOBAL.lock().unwrap();
        let recorder = Arc::new(VecRecorder::default());
        install(recorder.clone());
        {
            let _outer = span("pipeline.extract_acfg");
            {
                let _inner = span_fields("asm.parse", &[("lines", 2.0)]);
            }
            let _sibling = span("asm.cfg_build");
        }
        uninstall();

        let events = recorder.0.lock().unwrap().clone();
        let mut open: Vec<u64> = Vec::new();
        let mut parents: Vec<(String, Option<u64>)> = Vec::new();
        let mut closed: Vec<u64> = Vec::new();
        for event in &events {
            match event {
                Event::SpanStart { id, parent, stage, .. } => {
                    assert_eq!(*parent, open.last().copied(), "parent is the enclosing span");
                    parents.push((stage.clone(), *parent));
                    open.push(*id);
                }
                Event::SpanEnd { id, .. } => {
                    assert_eq!(open.pop(), Some(*id), "spans close in LIFO order");
                    closed.push(*id);
                }
                _ => {}
            }
        }
        assert!(open.is_empty(), "every span closed");
        assert_eq!(closed.len(), 3);
        let outer_id = match &events[0] {
            Event::SpanStart { id, .. } => *id,
            other => panic!("first event should open the outer span, got {other:?}"),
        };
        assert_eq!(
            parents,
            vec![
                ("pipeline.extract_acfg".to_string(), None),
                ("asm.parse".to_string(), Some(outer_id)),
                ("asm.cfg_build".to_string(), Some(outer_id)),
            ]
        );
    }

    #[test]
    fn span_end_reports_a_plausible_duration() {
        let _guard = GLOBAL.lock().unwrap();
        let recorder = Arc::new(VecRecorder::default());
        install(recorder.clone());
        {
            let _span = span("train.epoch");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        uninstall();
        let events = recorder.0.lock().unwrap().clone();
        let dur = events
            .iter()
            .find_map(|e| match e {
                Event::SpanEnd { dur_us, .. } => Some(*dur_us),
                _ => None,
            })
            .expect("span closed");
        assert!(dur >= 4_000, "slept 5ms but measured {dur}us");
    }

    #[test]
    fn log_level_parses_and_filters() {
        assert_eq!("debug".parse::<Level>().unwrap(), Level::Debug);
        assert_eq!("TRACE".parse::<Level>().unwrap(), Level::Trace);
        assert!("loud".parse::<Level>().is_err());
        assert!(Level::Error < Level::Info && Level::Info < Level::Debug);
        assert_eq!(Level::Debug.to_string(), "debug");

        let saved = log_level();
        set_log_level(Level::Error);
        assert!(log_enabled(Level::Error));
        assert!(!log_enabled(Level::Info));
        set_log_level(Level::Off);
        assert!(!log_enabled(Level::Error));
        assert!(!log_enabled(Level::Off), "Off is never printable");
        set_log_level(saved);
    }

    #[test]
    fn meta_and_flush_are_safe_without_a_recorder() {
        let _guard = GLOBAL.lock().unwrap();
        uninstall();
        meta("magic test");
        flush();
    }
}
