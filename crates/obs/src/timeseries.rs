//! Windowed time-series primitives for live telemetry: sliding-window
//! counters and log-linear latency histograms over a fixed-slot ring of
//! time windows.
//!
//! The cumulative-since-start counters in `/statsz` answer "how much,
//! ever"; an operator watching a live server needs "how much, *now*".
//! These types carve time into `slots × slot_width_us` windows (the
//! serving default is 60 × 1 s) and keep one atomically-updated cell
//! per window, so readers can render current rates (req/s over the last
//! minute) and current tail latency (windowed p50/p90/p99) without any
//! locking on the record path.
//!
//! Two design points matter for testability and accuracy:
//!
//! * **Injectable time.** Nothing here calls the system clock. Every
//!   record/read takes an explicit `now_us`, and call sites obtain it
//!   from a [`Clock`] — [`MonotonicClock`] in production,
//!   [`ManualClock`] in tests — so windowed behavior (rotation, expiry,
//!   quantiles) is exactly reproducible.
//! * **Log-linear buckets with interpolation.** Latencies land in
//!   buckets whose width is 1/8 of their magnitude (each power-of-two
//!   octave is split into 8 linear sub-buckets), and quantiles linearly
//!   interpolate inside the winning bucket. Reported quantiles are
//!   therefore exact to within one bucket (≤ 12.5% relative error) —
//!   far tighter than a pure power-of-two histogram's upper bounds.
//!
//! Concurrency contract: records and reads are lock-free relaxed
//! atomics. When the clock crosses a slot boundary, the first writer to
//! observe the stale slot re-zeroes it; writers racing with that reset
//! in the same instant can lose a bounded handful of events. Within a
//! window where the clock is stable (as in tests driving a
//! [`ManualClock`]), totals reconcile exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A source of monotonic microsecond timestamps.
///
/// Implementations must be cheap and thread-safe; the serving hot path
/// calls [`Clock::now_us`] several times per request.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since an arbitrary fixed origin (typically
    /// the clock's creation). Must never decrease.
    fn now_us(&self) -> u64;
}

/// The production clock: monotonic microseconds since construction.
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A hand-cranked clock for deterministic tests: time only moves when
/// the test calls [`ManualClock::advance_us`] (or `set_us`).
///
/// # Examples
///
/// ```
/// use magic_obs::timeseries::{Clock, ManualClock};
///
/// let clock = ManualClock::new();
/// assert_eq!(clock.now_us(), 0);
/// clock.advance_us(1_500_000);
/// assert_eq!(clock.now_us(), 1_500_000);
/// ```
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Creates a clock frozen at t = 0.
    pub fn new() -> Self {
        ManualClock { now: AtomicU64::new(0) }
    }

    /// Moves time forward by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.now.fetch_add(us, Ordering::SeqCst);
    }

    /// Jumps to an absolute timestamp (must not move backwards for the
    /// ring types to behave; they assume monotonic time).
    pub fn set_us(&self, us: u64) {
        self.now.store(us, Ordering::SeqCst);
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------
// Log-linear bucket layout (shared by WindowedHistogram and its tests).
// ---------------------------------------------------------------------

/// Sub-buckets per power-of-two octave (8 → ≤ 12.5% bucket width).
const SUB_BUCKETS: usize = 8;
const SUB_BITS: u32 = 3; // log2(SUB_BUCKETS)
/// Largest exponent covered exactly; values ≥ 2^(MAX_EXPONENT+1) clamp
/// into the last bucket. 2^32 µs ≈ 71.6 minutes — far beyond any
/// serving latency.
const MAX_EXPONENT: u32 = 31;

/// Total bucket count of the log-linear layout: the 8 exact buckets
/// for values `0..8`, then 8 sub-buckets for each octave
/// `[2^3, 2^4) .. [2^31, 2^32)`.
pub const NUM_BUCKETS: usize =
    (MAX_EXPONENT as usize - SUB_BITS as usize + 2) * SUB_BUCKETS;

/// Maps a value to its log-linear bucket index.
///
/// Values `0..8` get exact single-value buckets; beyond that each
/// power-of-two octave `[2^k, 2^(k+1))` is split into 8 equal linear
/// sub-buckets.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    if value >> (MAX_EXPONENT + 1) != 0 {
        return NUM_BUCKETS - 1; // beyond the covered range: clamp
    }
    let exp = 63 - value.leading_zeros();
    let sub = ((value >> (exp - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    // Octave `exp` starts at index 8·(exp − 2): the 8 exact buckets,
    // then 8 per octave from exp = 3 up.
    SUB_BUCKETS * (exp as usize - SUB_BITS as usize + 1) + sub
}

/// The `[lo, hi)` value range covered by bucket `index`.
///
/// Together with [`bucket_index`] this defines the "one histogram
/// bucket" accuracy contract: any interpolated quantile lies inside the
/// bounds of the bucket holding the true sample.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS {
        return (index as u64, index as u64 + 1);
    }
    let exp = (index / SUB_BUCKETS) as u32 + SUB_BITS - 1;
    let sub = (index % SUB_BUCKETS) as u64;
    let step = 1u64 << (exp - SUB_BITS);
    let lo = (1u64 << exp) + sub * step;
    (lo, lo + step)
}

// ---------------------------------------------------------------------
// Slot ring plumbing.
// ---------------------------------------------------------------------

/// The epoch tag a slot carries while it holds data for absolute slot
/// index `slot_idx`; offset by one so 0 marks a never-used slot.
fn slot_tag(slot_idx: u64) -> u64 {
    slot_idx + 1
}

/// A sliding-window event counter: `add` on the hot path, `sum`/`rate`
/// for rendering.
///
/// # Examples
///
/// ```
/// use magic_obs::timeseries::WindowedCounter;
///
/// let c = WindowedCounter::new(60, 1_000_000); // 60 × 1 s
/// c.add(0, 30);
/// c.add(2_500_000, 30); // 2.5 s later
/// assert_eq!(c.sum(2_500_000), 60);
/// assert!((c.rate_per_sec(2_500_000) - 1.0).abs() < 1e-9);
/// // 61 s later the first slot has aged out of the window.
/// assert_eq!(c.sum(61_000_000), 30);
/// ```
pub struct WindowedCounter {
    slot_width_us: u64,
    slots: Box<[CounterSlot]>,
}

struct CounterSlot {
    epoch: AtomicU64,
    value: AtomicU64,
}

impl WindowedCounter {
    /// Creates a ring of `slots` windows, each `slot_width_us` wide.
    /// Both are clamped to at least 1.
    pub fn new(slots: usize, slot_width_us: u64) -> Self {
        let slots = slots.max(1);
        WindowedCounter {
            slot_width_us: slot_width_us.max(1),
            slots: (0..slots)
                .map(|_| CounterSlot { epoch: AtomicU64::new(0), value: AtomicU64::new(0) })
                .collect(),
        }
    }

    /// The total time span the ring covers, in microseconds.
    pub fn window_us(&self) -> u64 {
        self.slot_width_us * self.slots.len() as u64
    }

    /// Records `delta` events at time `now_us`.
    pub fn add(&self, now_us: u64, delta: u64) {
        let slot_idx = now_us / self.slot_width_us;
        let pos = (slot_idx % self.slots.len() as u64) as usize;
        let slot = &self.slots[pos];
        let tag = slot_tag(slot_idx);
        if slot.epoch.load(Ordering::Acquire) != tag {
            slot.value.store(0, Ordering::Relaxed);
            slot.epoch.store(tag, Ordering::Release);
        }
        slot.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sum of events recorded within the window ending at `now_us`.
    pub fn sum(&self, now_us: u64) -> u64 {
        let current = now_us / self.slot_width_us;
        let n = self.slots.len() as u64;
        let mut total = 0u64;
        for back in 0..n {
            let Some(slot_idx) = current.checked_sub(back) else { break };
            let pos = (slot_idx % n) as usize;
            let slot = &self.slots[pos];
            if slot.epoch.load(Ordering::Acquire) == slot_tag(slot_idx) {
                total += slot.value.load(Ordering::Relaxed);
            }
        }
        total
    }

    /// Average event rate per second over the full window. Early in a
    /// process's life (before one full window has elapsed) this
    /// understates the instantaneous rate, by design: it never spikes.
    pub fn rate_per_sec(&self, now_us: u64) -> f64 {
        self.sum(now_us) as f64 / (self.window_us() as f64 / 1e6)
    }
}

/// A sliding-window log-linear histogram with interpolated quantiles.
///
/// # Examples
///
/// ```
/// use magic_obs::timeseries::WindowedHistogram;
///
/// let h = WindowedHistogram::new(60, 1_000_000);
/// for v in 1..=100u64 {
///     h.record(0, v * 10); // 10, 20, ... 1000 µs
/// }
/// let snap = h.snapshot(0);
/// assert_eq!(snap.count(), 100);
/// // The true p50 is 500 µs; the interpolated estimate lands inside
/// // the bucket holding it ([480, 512) at this resolution).
/// let p50 = snap.quantile(0.50);
/// assert!(p50 >= 480.0 && p50 < 512.0, "p50 = {p50}");
/// ```
pub struct WindowedHistogram {
    slot_width_us: u64,
    slots: Box<[HistSlot]>,
}

struct HistSlot {
    epoch: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl WindowedHistogram {
    /// Creates a ring of `slots` windows, each `slot_width_us` wide.
    pub fn new(slots: usize, slot_width_us: u64) -> Self {
        let slots = slots.max(1);
        WindowedHistogram {
            slot_width_us: slot_width_us.max(1),
            slots: (0..slots)
                .map(|_| HistSlot {
                    epoch: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                    buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                })
                .collect(),
        }
    }

    /// The total time span the ring covers, in microseconds.
    pub fn window_us(&self) -> u64 {
        self.slot_width_us * self.slots.len() as u64
    }

    /// Records one observation at time `now_us`.
    pub fn record(&self, now_us: u64, value: u64) {
        let slot_idx = now_us / self.slot_width_us;
        let pos = (slot_idx % self.slots.len() as u64) as usize;
        let slot = &self.slots[pos];
        let tag = slot_tag(slot_idx);
        if slot.epoch.load(Ordering::Acquire) != tag {
            for b in slot.buckets.iter() {
                b.store(0, Ordering::Relaxed);
            }
            slot.count.store(0, Ordering::Relaxed);
            slot.sum.store(0, Ordering::Relaxed);
            slot.epoch.store(tag, Ordering::Release);
        }
        slot.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Merges the live slots of the window ending at `now_us` into an
    /// immutable snapshot for quantile queries. One snapshot per render
    /// amortizes the merge across however many quantiles are read.
    pub fn snapshot(&self, now_us: u64) -> WindowSnapshot {
        let current = now_us / self.slot_width_us;
        let n = self.slots.len() as u64;
        let mut merged = vec![0u64; NUM_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        for back in 0..n {
            let Some(slot_idx) = current.checked_sub(back) else { break };
            let pos = (slot_idx % n) as usize;
            let slot = &self.slots[pos];
            if slot.epoch.load(Ordering::Acquire) != slot_tag(slot_idx) {
                continue;
            }
            for (m, b) in merged.iter_mut().zip(slot.buckets.iter()) {
                *m += b.load(Ordering::Relaxed);
            }
            count += slot.count.load(Ordering::Relaxed);
            sum += slot.sum.load(Ordering::Relaxed);
        }
        WindowSnapshot { buckets: merged, count, sum }
    }
}

/// A merged view of one histogram window, frozen at snapshot time.
pub struct WindowSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl WindowSnapshot {
    /// Observations in the window.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values in the window.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observed value (0 with no observations).
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum as f64 / self.count as f64 }
    }

    /// The interpolated `q`-quantile (`0 < q <= 1`). The estimate lies
    /// within the log-linear bucket holding the true rank-`⌈qN⌉`
    /// sample; with 8 sub-buckets per octave that bounds the relative
    /// error at 12.5%. Returns 0 with no observations.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_bounds(idx);
                // Midpoint-of-rank interpolation: the j-th of c samples
                // in a bucket is placed at fraction (j - 0.5) / c of
                // the bucket span, keeping the estimate inside [lo, hi).
                let j = (rank - seen) as f64;
                let frac = (j - 0.5) / c as f64;
                return lo as f64 + (hi - lo) as f64 * frac;
            }
            seen += c;
        }
        // Unreachable while count equals the bucket total; return the
        // top of the range defensively.
        bucket_bounds(NUM_BUCKETS - 1).1 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        let mut expected_lo = 0u64;
        for idx in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_lo, "bucket {idx} lower bound");
            assert!(hi > lo, "bucket {idx} is non-empty");
            expected_lo = hi;
        }
        assert_eq!(expected_lo, 1u64 << (MAX_EXPONENT + 1));
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        let probes = [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 65_535, 1 << 20, (1 << 32) - 1];
        for &v in &probes {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v < hi, "value {v} not in bucket {idx} [{lo}, {hi})");
        }
        // Clamped values go to the last bucket.
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(1 << 32), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_bucket_width_is_at_most_one_eighth() {
        for idx in SUB_BUCKETS..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert!(
                (hi - lo) as f64 <= lo as f64 / 8.0 + 1e-9,
                "bucket {idx} [{lo}, {hi}) wider than lo/8"
            );
        }
    }

    #[test]
    fn manual_clock_is_deterministic() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_us(), 0);
        clock.advance_us(250);
        clock.advance_us(750);
        assert_eq!(clock.now_us(), 1_000);
        clock.set_us(5_000);
        assert_eq!(clock.now_us(), 5_000);
    }

    #[test]
    fn monotonic_clock_moves_forward() {
        let clock = MonotonicClock::new();
        let a = clock.now_us();
        let b = clock.now_us();
        assert!(b >= a);
    }

    #[test]
    fn counter_sums_within_the_window_and_expires_outside_it() {
        let c = WindowedCounter::new(3, 1_000_000); // 3 × 1 s
        c.add(0, 5);
        c.add(1_200_000, 7);
        c.add(2_900_000, 1);
        assert_eq!(c.sum(2_900_000), 13);
        // t = 3.5 s: the t=0 slot has rotated out.
        assert_eq!(c.sum(3_500_000), 8);
        // t = 10 s: everything expired.
        assert_eq!(c.sum(10_000_000), 0);
    }

    #[test]
    fn counter_slot_reuse_resets_stale_contents() {
        let c = WindowedCounter::new(2, 1_000_000);
        c.add(0, 100);
        // Slot 0 (ring position 0) is reused at t = 2 s; the old 100
        // must not leak into the new window.
        c.add(2_000_000, 1);
        assert_eq!(c.sum(2_000_000), 1);
    }

    #[test]
    fn rate_is_sum_over_window_span() {
        let c = WindowedCounter::new(10, 1_000_000); // 10 s window
        for s in 0..10u64 {
            c.add(s * 1_000_000, 20);
        }
        assert!((c.rate_per_sec(9_000_000) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_one_bucket_of_exact() {
        let h = WindowedHistogram::new(60, 1_000_000);
        let mut values: Vec<u64> = (1..=500u64).map(|i| i * 37 % 9_001 + 1).collect();
        for &v in &values {
            h.record(0, v);
        }
        values.sort_unstable();
        let snap = h.snapshot(0);
        assert_eq!(snap.count(), 500);
        for &q in &[0.50, 0.90, 0.99] {
            let exact = values[((q * 500.0_f64).ceil() as usize).clamp(1, 500) - 1];
            let est = snap.quantile(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            assert!(
                est >= lo as f64 && est < hi as f64,
                "q={q}: estimate {est} outside bucket [{lo}, {hi}) of exact {exact}"
            );
        }
    }

    #[test]
    fn histogram_window_expiry_drops_old_observations() {
        let h = WindowedHistogram::new(2, 1_000_000);
        h.record(0, 100);
        h.record(1_500_000, 200);
        assert_eq!(h.snapshot(1_500_000).count(), 2);
        // t = 2.2 s: the t=0 slot rotated out; only the 200 survives.
        let snap = h.snapshot(2_200_000);
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.sum(), 200);
    }

    #[test]
    fn empty_window_renders_zeroes() {
        let h = WindowedHistogram::new(4, 1_000_000);
        let snap = h.snapshot(123_456_789);
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.99), 0.0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn concurrent_records_with_a_frozen_clock_reconcile_exactly() {
        let h = Arc::new(WindowedHistogram::new(60, 1_000_000));
        let c = Arc::new(WindowedCounter::new(60, 1_000_000));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        h.record(0, t * 1_000 + i);
                        c.add(0, 1);
                    }
                })
            })
            .collect();
        // Render concurrently with the writers; snapshots must never
        // overshoot the final totals and must reconcile at the end.
        for _ in 0..50 {
            let snap = h.snapshot(0);
            assert!(snap.count() <= 8_000);
            assert!(c.sum(0) <= 8_000);
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot(0).count(), 8_000);
        assert_eq!(c.sum(0), 8_000);
    }
}
