//! Collapsed-stack export: turn a trace into the `stack;stack;frame N`
//! line format consumed by standard flamegraph tooling (Brendan Gregg's
//! `flamegraph.pl`, inferno, speedscope).
//!
//! Each output line is a semicolon-joined path of frames and a sample
//! value in **microseconds**. Span nesting gives the path: a span's
//! frame is its stage name, with `train.epoch` frames disambiguated per
//! epoch (`train.epoch#3`) so epochs appear side by side. Schema v2
//! `op_profile` events become leaf frames `<phase>.<kind>` (e.g.
//! `fwd.matmul`) under the epoch they were flushed in, and their self
//! time is deducted from that epoch's own frame so nothing is counted
//! twice.
//!
//! Lines are merged by path and emitted in lexicographic order, so the
//! output is deterministic and diff-friendly.

use crate::event::Event;
use crate::stage;
use std::collections::HashMap;

/// One open span while streaming the trace.
struct OpenSpan {
    path: String,
    stage: String,
    parent: Option<u64>,
    /// Epoch annotation, for attaching `op_profile` events.
    epoch: Option<f64>,
    /// Summed duration of already-closed direct children, µs.
    child_us: u64,
    /// Op self time already attributed to leaf frames under this span, µs.
    op_us: u64,
}

/// Builds collapsed-stack lines from parsed trace events.
///
/// Returns merged `path value_us` lines sorted lexicographically by
/// path. Zero-valued frames are dropped. Spans closed without a
/// matching start (possible in a truncated trace) become top-level
/// frames.
pub fn collapsed_from_events(events: impl Iterator<Item = Event>) -> Vec<String> {
    let mut open: HashMap<u64, OpenSpan> = HashMap::new();
    let mut weights: HashMap<String, u64> = HashMap::new();

    for event in events {
        match event {
            Event::SpanStart { id, parent, stage, fields, .. } => {
                let epoch = fields.iter().find(|(k, _)| k == "epoch").map(|(_, v)| *v);
                let frame = match epoch {
                    Some(e) if stage == stage::TRAIN_EPOCH => format!("{stage}#{e}"),
                    _ => stage.clone(),
                };
                let path = match parent.and_then(|p| open.get(&p)) {
                    Some(enclosing) => format!("{};{frame}", enclosing.path),
                    None => frame,
                };
                open.insert(id, OpenSpan { path, stage, parent, epoch, child_us: 0, op_us: 0 });
            }
            Event::SpanEnd { id, stage, dur_us, .. } => {
                let span = open.remove(&id).unwrap_or(OpenSpan {
                    path: stage.clone(),
                    stage,
                    parent: None,
                    epoch: None,
                    child_us: 0,
                    op_us: 0,
                });
                if let Some(parent) = span.parent.and_then(|p| open.get_mut(&p)) {
                    parent.child_us += dur_us;
                }
                let self_us = dur_us.saturating_sub(span.child_us).saturating_sub(span.op_us);
                *weights.entry(span.path).or_insert(0) += self_us;
            }
            Event::OpProfile { kind, phase, self_ns, fields, .. } => {
                // The evaluate pseudo-op mirrors the train.evaluate
                // span; keeping both would count that time twice.
                if kind == stage::OP_HOST_EVALUATE {
                    continue;
                }
                let epoch = fields.iter().find(|(k, _)| k == "epoch").map(|(_, v)| *v);
                // Attach to the open train.epoch span this row was
                // flushed for (matching epoch field), falling back to
                // any open epoch, then to a top-level frame.
                let host = open
                    .values_mut()
                    .filter(|s| s.stage == stage::TRAIN_EPOCH)
                    .filter(|s| epoch.is_none() || s.epoch == epoch)
                    .map(|s| &mut *s)
                    .next();
                let us = self_ns / 1_000;
                let path = match host {
                    Some(span) => {
                        span.op_us += us;
                        format!("{};{phase}.{kind}", span.path)
                    }
                    None => format!("{phase}.{kind}"),
                };
                *weights.entry(path).or_insert(0) += us;
            }
            Event::Meta { .. }
            | Event::Counter { .. }
            | Event::Histogram { .. }
            | Event::ServeAccess { .. } => {}
        }
    }

    let mut lines: Vec<String> = weights
        .into_iter()
        .filter(|(_, us)| *us > 0)
        .map(|(path, us)| format!("{path} {us}"))
        .collect();
    lines.sort();
    lines
}

/// Builds collapsed-stack lines straight from JSONL trace lines, with
/// the same damage tolerance as `TraceSummary::from_lines`: unknown
/// event types are skipped anywhere, and an unparseable final line is
/// skipped (truncated tail of a killed run).
///
/// # Errors
///
/// Returns `"line N: <why>"` for any other malformed line.
pub fn collapsed_from_lines<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Vec<String>, String> {
    let numbered: Vec<(usize, &str)> =
        lines.enumerate().filter(|(_, line)| !line.trim().is_empty()).collect();
    let last = numbered.len().saturating_sub(1);
    let mut events = Vec::new();
    for (pos, &(lineno, line)) in numbered.iter().enumerate() {
        match Event::from_jsonl_line_lenient(line) {
            Ok(Some(event)) => events.push(event),
            Ok(None) => {}
            Err(_) if pos == last => {}
            Err(e) => return Err(format!("line {}: {e}", lineno + 1)),
        }
    }
    Ok(collapsed_from_events(events.into_iter()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_start(id: u64, parent: Option<u64>, stage: &str, fields: Vec<(String, f64)>) -> Event {
        Event::SpanStart { id, parent, stage: stage.into(), ts_us: 0, fields }
    }

    fn span_end(id: u64, stage: &str, dur_us: u64) -> Event {
        Event::SpanEnd { id, stage: stage.into(), ts_us: 0, dur_us }
    }

    fn op(kind: &str, phase: &str, self_ns: u64, epoch: f64) -> Event {
        Event::OpProfile {
            kind: kind.into(),
            phase: phase.into(),
            shape_class: "≤1Ki".into(),
            ts_us: 0,
            calls: 1,
            self_ns,
            flops: 0,
            bytes_out: 0,
            fields: vec![("epoch".into(), epoch)],
        }
    }

    #[test]
    fn output_is_sorted_merged_and_epoch_disambiguated() {
        // train.run > two epochs; ops flushed inside each epoch. The op
        // events arrive *before* their epoch's span_end, as the trainer
        // emits them.
        let events = vec![
            span_start(1, None, "train.run", vec![]),
            span_start(2, Some(1), "train.epoch", vec![("epoch".into(), 0.0)]),
            op("matmul", "fwd", 40_000, 0.0),
            op("relu", "bwd", 10_000, 0.0),
            span_end(2, "train.epoch", 100),
            span_start(3, Some(1), "train.epoch", vec![("epoch".into(), 1.0)]),
            op("matmul", "fwd", 30_000, 1.0),
            op("matmul", "fwd", 30_000, 1.0), // merged with the line above
            span_end(3, "train.epoch", 80),
            span_end(1, "train.run", 200),
        ];
        let lines = collapsed_from_events(events.into_iter());
        assert_eq!(
            lines,
            vec![
                // 100 - 40 - 10 = 50 self for epoch 0; 80 - 60 = 20 for epoch 1;
                // 200 - 100 - 80 = 20 self for the run.
                "train.run 20",
                "train.run;train.epoch#0 50",
                "train.run;train.epoch#0;bwd.relu 10",
                "train.run;train.epoch#0;fwd.matmul 40",
                "train.run;train.epoch#1 20",
                "train.run;train.epoch#1;fwd.matmul 60",
            ]
        );
        // Lexicographic order is part of the contract.
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn orphan_ops_and_ends_become_top_level_frames() {
        let events = vec![
            op("matmul", "fwd", 5_000, 0.0),
            span_end(9, "asm.parse", 7),
        ];
        let lines = collapsed_from_events(events.into_iter());
        assert_eq!(lines, vec!["asm.parse 7", "fwd.matmul 5"]);
    }

    #[test]
    fn evaluate_pseudo_op_is_skipped_in_favor_of_its_span() {
        let events = vec![
            span_start(1, None, "train.epoch", vec![("epoch".into(), 0.0)]),
            span_start(2, Some(1), "train.evaluate", vec![]),
            span_end(2, "train.evaluate", 30),
            op(stage::OP_HOST_EVALUATE, "host", 30_000, 0.0),
            span_end(1, "train.epoch", 100),
        ];
        let lines = collapsed_from_events(events.into_iter());
        assert_eq!(lines, vec!["train.epoch#0 70", "train.epoch#0;train.evaluate 30"]);
    }

    #[test]
    fn zero_weight_frames_are_dropped() {
        let events = vec![
            span_start(1, None, "train.run", vec![]),
            span_start(2, Some(1), "train.evaluate", vec![]),
            span_end(2, "train.evaluate", 50),
            span_end(1, "train.run", 50), // all time in the child
        ];
        let lines = collapsed_from_events(events.into_iter());
        assert_eq!(lines, vec!["train.run;train.evaluate 50"]);
    }

    #[test]
    fn lines_wrapper_applies_trace_tolerance() {
        let text = "{\"v\":2,\"t\":\"span_start\",\"id\":1,\"parent\":null,\"stage\":\"train.run\",\"ts_us\":0}\n\
                    {\"v\":2,\"t\":\"from_the_future\",\"ts_us\":1}\n\
                    {\"v\":2,\"t\":\"span_end\",\"id\":1,\"stage\":\"train.run\",\"ts_us\":9,\"dur_us\":9}\n\
                    {\"v\":2,\"t\":\"span_en";
        let lines = collapsed_from_lines(text.lines()).unwrap();
        assert_eq!(lines, vec!["train.run 9"]);
        assert!(collapsed_from_lines("nope\n{\"v\":1,\"t\":\"meta\"}".lines()).is_err());
    }
}
