//! The stage/metric name registry — the vocabulary of the telemetry
//! contract.
//!
//! Instrumentation sites must name spans, counters, and histograms with
//! these constants so traces from different builds aggregate under the
//! same keys. Names are `dotted.paths` rooted at the subsystem; the
//! unit of a numeric metric is suffixed to its name (`_us` =
//! microseconds). The full semantics of each stage are documented in
//! `docs/OBSERVABILITY.md`; adding a constant here is a schema change
//! and must update that document.

// ---- spans -------------------------------------------------------------

/// Parse one IDA-style `.asm` listing into a `Program` (Algorithm 1's
/// input). Child of [`EXTRACT_ACFG`].
pub const ASM_PARSE: &str = "asm.parse";

/// Build basic blocks and edges from a parsed program (Algorithm 2).
/// Child of [`EXTRACT_ACFG`].
pub const CFG_BUILD: &str = "asm.cfg_build";

/// Attribute each basic block with the Table I feature vector.
/// Child of [`EXTRACT_ACFG`].
pub const ACFG_ATTRIBUTES: &str = "graph.acfg_attributes";

/// End-to-end listing → attributed CFG extraction (the front half of
/// the paper's Fig. 1).
pub const EXTRACT_ACFG: &str = "pipeline.extract_acfg";

/// Apply one `--reduce` graph-reduction strategy to one ACFG (chain
/// collapse, leaf pruning, or WL coarsening). Fields: `nodes_before`,
/// `edges_before`; removals are reported through the
/// [`C_REDUCE_NODES_REMOVED`] / [`C_REDUCE_EDGES_REMOVED`] counters.
/// Emitted only when the strategy is not `none`.
pub const REDUCE_APPLY: &str = "reduce.apply";

/// Synthesize one corpus (`magic-synth` generators).
pub const CORPUS_GENERATE: &str = "corpus.generate";

/// Extract ACFGs for a whole corpus (wraps many [`EXTRACT_ACFG`]).
pub const CORPUS_EXTRACT: &str = "corpus.extract";

/// One full training run (`Trainer::train`).
pub const TRAIN: &str = "train.run";

/// One pass over the training split. Child of [`TRAIN`];
/// fields: `epoch`.
pub const TRAIN_EPOCH: &str = "train.epoch";

/// Loss/accuracy evaluation over a validation or test split.
/// Fields: `samples`.
pub const EVALUATE: &str = "train.evaluate";

/// Serialize model weights to the checkpoint format.
pub const CHECKPOINT_SAVE: &str = "checkpoint.save";

/// Parse checkpoint text back into model weights.
pub const CHECKPOINT_LOAD: &str = "checkpoint.load";

/// Classify one listing through a trained pipeline.
pub const PREDICT: &str = "pipeline.predict";

/// One HTTP request handled by `magic serve`, from parsed request line
/// to response written.
pub const SERVE_REQUEST: &str = "serve.request";

/// One fused micro-batch executed by a `magic serve` model worker:
/// block-diagonal assembly + batched forward. Fields: `batch` (number
/// of requests fused), `vertices` (total vertex count).
pub const SERVE_BATCH_EXECUTE: &str = "serve.batch_execute";

/// Build the sharded binary ACFG cache for one corpus (`magic cache
/// build`): plan + render + extract + shard writes. Fields: `samples`,
/// `shards`.
pub const CACHE_BUILD: &str = "cache.build";

/// Encode and write one binary ACFG shard (`magic-acfg/1`), including
/// the checksum footer. Fields: `shard`, `records`, `bytes`.
pub const CACHE_WRITE: &str = "cache.write";

/// Read and decode one binary ACFG shard back into `Acfg` records
/// (header + index validation, payload decode, checksum verify).
/// Fields: `shard`, `records`, `bytes`.
pub const CACHE_READ: &str = "cache.read";

// ---- counters ----------------------------------------------------------

/// Instructions accepted by the listing parser.
pub const C_ASM_INSTRUCTIONS: &str = "asm.instructions";

/// Basic blocks produced by the CFG builder.
pub const C_CFG_BLOCKS: &str = "cfg.blocks";

/// Edges produced by the CFG builder.
pub const C_CFG_EDGES: &str = "cfg.edges";

/// Training samples processed (one delta per epoch).
pub const C_TRAIN_SAMPLES: &str = "train.samples";

/// Predict requests accepted into the `magic serve` batching queue.
pub const C_SERVE_REQUESTS: &str = "serve.requests";

/// Predict requests load-shed with HTTP 503 because the bounded queue
/// was full (or the server was draining for shutdown).
pub const C_SERVE_SHED: &str = "serve.shed";

/// Bytes of binary ACFG shard data written by cache builds (header +
/// index + payload + footer).
pub const C_CACHE_BYTES_WRITTEN: &str = "cache.bytes_written";

/// Bytes of binary ACFG shard data read back by cache loads and
/// streamed record fetches.
pub const C_CACHE_BYTES_READ: &str = "cache.bytes_read";

/// Vertices removed by graph reduction (`--reduce`), summed over every
/// [`REDUCE_APPLY`] application.
pub const C_REDUCE_NODES_REMOVED: &str = "reduce.nodes_removed";

/// Edges removed by graph reduction (`--reduce`), summed over every
/// [`REDUCE_APPLY`] application.
pub const C_REDUCE_EDGES_REMOVED: &str = "reduce.edges_removed";

// ---- histograms --------------------------------------------------------

/// Per-worker busy time over one epoch's forward/backward jobs, in
/// microseconds. Fields: `worker`, `epoch`. The spread across workers
/// is the load imbalance of the data-parallel executor.
pub const H_WORKER_BUSY_US: &str = "train.worker_busy_us";

/// Wall-clock the epoch spent inside mini-batch fan-out (the parallel
/// region), in microseconds. Fields: `epoch`. Compare against
/// [`H_WORKER_BUSY_US`] to see queueing/idle overhead.
pub const H_EPOCH_FANOUT_US: &str = "train.fanout_us";

/// Wall-clock the epoch spent in the serial gradient reduce + clip +
/// optimizer step, in microseconds. Fields: `epoch`. This is the
/// Amdahl bound on the PR 1 parallel speedup.
pub const H_EPOCH_UPDATE_US: &str = "train.update_us";

/// High-water mark of live tensor element bytes over one epoch, as
/// reported by `magic_tensor::mem` (peak reset at each epoch start).
/// Fields: `epoch`. Only emitted when tensor memory accounting is
/// enabled alongside the recorder.
pub const H_MEM_PEAK_BYTES: &str = "train.mem_peak_bytes";

/// Tensor buffers heap-allocated during one epoch (delta of
/// `magic_tensor::mem` `allocations`). Fields: `epoch`. Only emitted
/// when tensor memory accounting is enabled. A warm workspace pool
/// should pin this near the non-pooled residue (leaf clones, op glue);
/// a regression here means per-sample buffers stopped recycling.
pub const H_ALLOC_COUNT: &str = "train.alloc_count";

/// Workspace-pool checkouts served from recycled buffers during one
/// epoch, summed over worker-lane tapes. Fields: `epoch`.
pub const H_POOL_HITS: &str = "train.pool_hits";

/// Workspace-pool checkouts that fell through to a fresh heap
/// allocation during one epoch, summed over worker-lane tapes. Fields:
/// `epoch`. After the first (warm-up) epoch this should be zero for a
/// fixed workload shape.
pub const H_POOL_MISSES: &str = "train.pool_misses";

/// Number of requests fused into one `magic serve` micro-batch, one
/// observation per executed batch. The mean is the effective batching
/// factor; compare against `--max-batch` to see whether the window or
/// the cap is binding.
pub const H_SERVE_BATCH_SIZE: &str = "serve.batch_size";

/// End-to-end request latency observed by `magic serve` (enqueue →
/// response written), in microseconds, one observation per 2xx
/// response.
pub const H_SERVE_LATENCY_US: &str = "serve.latency_us";

/// Queue depth sampled at each successful enqueue — the backlog a new
/// request joins. Persistent values near `--queue-depth` mean the
/// server is saturated and about to shed.
pub const H_SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";

/// Time one predict request spent reading + decoding HTTP, in
/// microseconds (the `parse` lifecycle stage; schema v3).
pub const H_SERVE_PARSE_US: &str = "serve.parse_us";

/// Time one predict request spent in ACFG extraction (listing parse →
/// CFG → attributes) on the IO thread, in microseconds (the `extract`
/// lifecycle stage; schema v3).
pub const H_SERVE_EXTRACT_US: &str = "serve.extract_us";

/// Time one predict request waited in the batching queue before a model
/// worker picked it up, in microseconds (the `queue` lifecycle stage;
/// schema v3). Grows with `--batch-window-us` by design.
pub const H_SERVE_QUEUE_WAIT_US: &str = "serve.queue_wait_us";

/// Time one predict request spent inside the fused forward pass, in
/// microseconds (the `execute` lifecycle stage; schema v3). Shared by
/// every request in the batch.
pub const H_SERVE_EXECUTE_US: &str = "serve.execute_us";

/// Time one predict request spent writing its response bytes, in
/// microseconds (the `write` lifecycle stage; schema v3).
pub const H_SERVE_WRITE_US: &str = "serve.write_us";

// ---- op profile (schema v2) --------------------------------------------

/// Host-side pseudo-op kinds used by `op_profile` events (phase
/// `"host"`) to attribute per-epoch wall-clock that falls outside the
/// tape: parameter binding, gradient accumulation/reduction, gradient
/// clipping, the optimizer step, and split evaluation. Tape op kinds
/// (`"matmul"`, `"conv2d"`, …) are defined by the autograd op registry;
/// the full list lives in `docs/OBSERVABILITY.md`.
pub const OP_HOST_BIND: &str = "param.bind";
/// Per-sample gradient accumulation into batch slots (phase `"host"`).
pub const OP_HOST_ACCUMULATE: &str = "grad.accumulate";
/// Batch-order gradient reduction across slots (phase `"host"`).
pub const OP_HOST_REDUCE: &str = "grad.reduce";
/// Global gradient-norm clipping (phase `"host"`).
pub const OP_HOST_CLIP: &str = "grad.clip";
/// Optimizer parameter update (phase `"host"`).
pub const OP_HOST_STEP: &str = "optimizer.step";
/// Train/validation split evaluation (phase `"host"`).
pub const OP_HOST_EVALUATE: &str = "evaluate";
/// Worker busy time not attributable to any named op: tape bookkeeping,
/// forward glue between ops, the backward walk, and the profiling
/// timestamps themselves (phase `"host"`).
pub const OP_HOST_SAMPLE_OVERHEAD: &str = "sample.overhead";
/// Block-diagonal batch assembly — fusing per-sample CSR adjacencies,
/// inverse degrees, and attribute matrices into one `GraphBatch` before a
/// batched forward/backward pass (phase `"host"`).
pub const OP_HOST_BATCH_GRAPH: &str = "host.batch_graph";
