//! Trace events and their JSONL encoding — the versioned wire format.
//!
//! Every event serializes to exactly one JSON line. The field layout is a
//! public contract, documented in `docs/OBSERVABILITY.md` and versioned
//! through [`SCHEMA_VERSION`]: readers must ignore unknown fields and
//! reject unknown major versions.

use magic_json::{Map, Value};

/// Version stamp written into every event line (the `"v"` field).
///
/// Version 2 added the [`Event::OpProfile`] event; version 3 added the
/// [`Event::ServeAccess`] access-log event. Every older event is
/// unchanged across bumps, so readers accept all versions back to
/// [`MIN_SCHEMA_VERSION`].
pub const SCHEMA_VERSION: u64 = 3;

/// Oldest schema version readers still accept.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Schema identifier written into the stream's `meta` header event.
pub const SCHEMA_NAME: &str = "magic-trace/3";

/// One structured telemetry event.
///
/// Timestamps (`ts_us`) are microseconds since the trace epoch — the
/// instant the first recorder of the process was installed — so event
/// times are directly comparable within one trace file. Durations
/// (`dur_us`) are measured with a monotonic clock.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Stream header, written once when a recorder is installed.
    Meta {
        /// The command line (or free-form description) that produced the
        /// trace.
        command: String,
    },
    /// A span opened: a named stage of the pipeline began.
    SpanStart {
        /// Process-unique span id.
        id: u64,
        /// Id of the enclosing span on the *same thread*, if any. Spans
        /// opened on worker threads have no parent.
        parent: Option<u64>,
        /// Stage name from the registry in [`crate::stage`].
        stage: String,
        /// Microseconds since the trace epoch.
        ts_us: u64,
        /// Small numeric annotations (epoch index, sample count, …).
        fields: Vec<(String, f64)>,
    },
    /// A span closed.
    SpanEnd {
        /// Id of the matching [`Event::SpanStart`].
        id: u64,
        /// Stage name, repeated so single lines aggregate without a join.
        stage: String,
        /// Microseconds since the trace epoch.
        ts_us: u64,
        /// Monotonic-elapsed duration of the span in microseconds.
        dur_us: u64,
    },
    /// A monotonically accumulating count (instructions parsed, samples
    /// trained, …). Aggregators sum the deltas.
    Counter {
        /// Counter name from the registry in [`crate::stage`].
        name: String,
        /// Microseconds since the trace epoch.
        ts_us: u64,
        /// Amount to add to the running total.
        delta: f64,
    },
    /// One observation of a distribution (a timing, a size). Aggregators
    /// report count/mean/min/max over the observations.
    Histogram {
        /// Histogram name from the registry in [`crate::stage`].
        name: String,
        /// Microseconds since the trace epoch.
        ts_us: u64,
        /// The observed value (unit is part of the name, e.g. `_us`).
        value: f64,
        /// Small numeric annotations (worker lane, epoch index, …).
        fields: Vec<(String, f64)>,
    },
    /// Aggregated per-op profiling row (schema v2): everything the tape
    /// profiler learned about one `(kind, phase, shape class)` cell since
    /// the previous flush. Flushed by the trainer at epoch boundaries.
    OpProfile {
        /// Stable op kind name from the registry in
        /// `docs/OBSERVABILITY.md` (e.g. `"matmul"`, or a host pseudo-op
        /// like `"grad.reduce"`).
        kind: String,
        /// `"fwd"`, `"bwd"`, or `"host"`.
        phase: String,
        /// Power-of-two output-size bucket label (e.g. `"≤4Ki"`).
        shape_class: String,
        /// Microseconds since the trace epoch, at flush time.
        ts_us: u64,
        /// Op executions aggregated into this row.
        calls: u64,
        /// Summed self time, nanoseconds.
        self_ns: u64,
        /// Summed floating-point operations.
        flops: u64,
        /// Summed output bytes.
        bytes_out: u64,
        /// Small numeric annotations (epoch index, …).
        fields: Vec<(String, f64)>,
    },
    /// One served request's full lifecycle record (schema v3): the
    /// access-log line `magic serve --access-log` emits after the
    /// response bytes are on the wire. Aggregate offline with
    /// `magic report --serve` ([`crate::serve_report`]).
    ServeAccess {
        /// Process-unique request id (also echoed in the predict
        /// response body, so clients can correlate).
        id: u64,
        /// Microseconds since the trace epoch, stamped when the
        /// response write completed.
        ts_us: u64,
        /// HTTP status the request was answered with.
        status: u16,
        /// Request path (`/v1/predict`, `/statsz`, …).
        path: String,
        /// Size of the fused batch that carried the forward pass
        /// (0 when no forward pass ran, e.g. errors or admin routes).
        batch: u64,
        /// Request body bytes read.
        bytes_in: u64,
        /// Response body bytes written.
        bytes_out: u64,
        /// Time reading + decoding the HTTP request and body, µs.
        parse_us: u64,
        /// Time in ACFG extraction (parse → CFG → attributes), µs.
        extract_us: u64,
        /// Time from enqueue until a model worker picked the job, µs.
        queue_us: u64,
        /// Time inside the batched forward pass, µs.
        execute_us: u64,
        /// Time writing the response bytes, µs.
        write_us: u64,
        /// End-to-end accept → response-written duration, µs.
        total_us: u64,
        /// Predicted family, present on 200 predict responses.
        family: Option<String>,
    },
}

fn fields_to_json(fields: &[(String, f64)]) -> Value {
    let mut map = Map::new();
    for (k, v) in fields {
        map.insert(k.clone(), Value::Number(*v));
    }
    Value::Object(map)
}

fn fields_from_json(value: &Value) -> Vec<(String, f64)> {
    match value.as_object() {
        Some(map) => map
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|v| (k.to_string(), v)))
            .collect(),
        None => Vec::new(),
    }
}

impl Event {
    /// Encodes the event as a JSON [`Value`] following the
    /// `magic-trace/1` schema.
    pub fn to_json(&self) -> Value {
        let mut map = Map::new();
        map.insert("v", Value::Number(SCHEMA_VERSION as f64));
        match self {
            Event::Meta { command } => {
                map.insert("t", Value::String("meta".into()));
                map.insert("schema", Value::String(SCHEMA_NAME.into()));
                map.insert("command", Value::String(command.clone()));
            }
            Event::SpanStart { id, parent, stage, ts_us, fields } => {
                map.insert("t", Value::String("span_start".into()));
                map.insert("id", Value::Number(*id as f64));
                map.insert(
                    "parent",
                    parent.map_or(Value::Null, |p| Value::Number(p as f64)),
                );
                map.insert("stage", Value::String(stage.clone()));
                map.insert("ts_us", Value::Number(*ts_us as f64));
                if !fields.is_empty() {
                    map.insert("fields", fields_to_json(fields));
                }
            }
            Event::SpanEnd { id, stage, ts_us, dur_us } => {
                map.insert("t", Value::String("span_end".into()));
                map.insert("id", Value::Number(*id as f64));
                map.insert("stage", Value::String(stage.clone()));
                map.insert("ts_us", Value::Number(*ts_us as f64));
                map.insert("dur_us", Value::Number(*dur_us as f64));
            }
            Event::Counter { name, ts_us, delta } => {
                map.insert("t", Value::String("counter".into()));
                map.insert("name", Value::String(name.clone()));
                map.insert("ts_us", Value::Number(*ts_us as f64));
                map.insert("delta", Value::Number(*delta));
            }
            Event::Histogram { name, ts_us, value, fields } => {
                map.insert("t", Value::String("hist".into()));
                map.insert("name", Value::String(name.clone()));
                map.insert("ts_us", Value::Number(*ts_us as f64));
                map.insert("value", Value::Number(*value));
                if !fields.is_empty() {
                    map.insert("fields", fields_to_json(fields));
                }
            }
            Event::OpProfile {
                kind,
                phase,
                shape_class,
                ts_us,
                calls,
                self_ns,
                flops,
                bytes_out,
                fields,
            } => {
                map.insert("t", Value::String("op_profile".into()));
                map.insert("kind", Value::String(kind.clone()));
                map.insert("phase", Value::String(phase.clone()));
                map.insert("shape_class", Value::String(shape_class.clone()));
                map.insert("ts_us", Value::Number(*ts_us as f64));
                map.insert("calls", Value::Number(*calls as f64));
                map.insert("self_ns", Value::Number(*self_ns as f64));
                map.insert("flops", Value::Number(*flops as f64));
                map.insert("bytes_out", Value::Number(*bytes_out as f64));
                if !fields.is_empty() {
                    map.insert("fields", fields_to_json(fields));
                }
            }
            Event::ServeAccess {
                id,
                ts_us,
                status,
                path,
                batch,
                bytes_in,
                bytes_out,
                parse_us,
                extract_us,
                queue_us,
                execute_us,
                write_us,
                total_us,
                family,
            } => {
                map.insert("t", Value::String("serve_access".into()));
                map.insert("id", Value::Number(*id as f64));
                map.insert("ts_us", Value::Number(*ts_us as f64));
                map.insert("status", Value::Number(*status as f64));
                map.insert("path", Value::String(path.clone()));
                map.insert("batch", Value::Number(*batch as f64));
                map.insert("bytes_in", Value::Number(*bytes_in as f64));
                map.insert("bytes_out", Value::Number(*bytes_out as f64));
                map.insert("parse_us", Value::Number(*parse_us as f64));
                map.insert("extract_us", Value::Number(*extract_us as f64));
                map.insert("queue_us", Value::Number(*queue_us as f64));
                map.insert("execute_us", Value::Number(*execute_us as f64));
                map.insert("write_us", Value::Number(*write_us as f64));
                map.insert("total_us", Value::Number(*total_us as f64));
                if let Some(family) = family {
                    map.insert("family", Value::String(family.clone()));
                }
            }
        }
        Value::Object(map)
    }

    /// Serializes the event as one compact JSON line (no trailing
    /// newline).
    pub fn to_jsonl_line(&self) -> String {
        magic_json::to_string(&self.to_json())
    }

    /// Decodes an event from its JSON form.
    ///
    /// Unknown fields are ignored (forward compatibility within a major
    /// version); an unknown `"v"` or `"t"` is an error.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(value: &Value) -> Result<Event, String> {
        let version = value["v"].as_u64().ok_or("missing schema version \"v\"")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(format!("unsupported schema version {version}"));
        }
        let kind = value["t"].as_str().ok_or("missing event type \"t\"")?;
        let ts_us = || value["ts_us"].as_u64().ok_or("missing ts_us");
        match kind {
            "meta" => Ok(Event::Meta {
                command: value["command"].as_str().unwrap_or_default().to_string(),
            }),
            "span_start" => Ok(Event::SpanStart {
                id: value["id"].as_u64().ok_or("missing span id")?,
                parent: value["parent"].as_u64(),
                stage: value["stage"].as_str().ok_or("missing stage")?.to_string(),
                ts_us: ts_us()?,
                fields: fields_from_json(&value["fields"]),
            }),
            "span_end" => Ok(Event::SpanEnd {
                id: value["id"].as_u64().ok_or("missing span id")?,
                stage: value["stage"].as_str().ok_or("missing stage")?.to_string(),
                ts_us: ts_us()?,
                dur_us: value["dur_us"].as_u64().ok_or("missing dur_us")?,
            }),
            "counter" => Ok(Event::Counter {
                name: value["name"].as_str().ok_or("missing name")?.to_string(),
                ts_us: ts_us()?,
                delta: value["delta"].as_f64().ok_or("missing delta")?,
            }),
            "hist" => Ok(Event::Histogram {
                name: value["name"].as_str().ok_or("missing name")?.to_string(),
                ts_us: ts_us()?,
                value: value["value"].as_f64().ok_or("missing value")?,
                fields: fields_from_json(&value["fields"]),
            }),
            "op_profile" => Ok(Event::OpProfile {
                kind: value["kind"].as_str().ok_or("missing kind")?.to_string(),
                phase: value["phase"].as_str().ok_or("missing phase")?.to_string(),
                shape_class: value["shape_class"].as_str().unwrap_or_default().to_string(),
                ts_us: ts_us()?,
                calls: value["calls"].as_u64().ok_or("missing calls")?,
                self_ns: value["self_ns"].as_u64().ok_or("missing self_ns")?,
                flops: value["flops"].as_u64().unwrap_or(0),
                bytes_out: value["bytes_out"].as_u64().unwrap_or(0),
                fields: fields_from_json(&value["fields"]),
            }),
            "serve_access" => Ok(Event::ServeAccess {
                id: value["id"].as_u64().ok_or("missing request id")?,
                ts_us: ts_us()?,
                status: value["status"].as_u64().ok_or("missing status")? as u16,
                path: value["path"].as_str().unwrap_or_default().to_string(),
                batch: value["batch"].as_u64().unwrap_or(0),
                bytes_in: value["bytes_in"].as_u64().unwrap_or(0),
                bytes_out: value["bytes_out"].as_u64().unwrap_or(0),
                parse_us: value["parse_us"].as_u64().unwrap_or(0),
                extract_us: value["extract_us"].as_u64().unwrap_or(0),
                queue_us: value["queue_us"].as_u64().unwrap_or(0),
                execute_us: value["execute_us"].as_u64().unwrap_or(0),
                write_us: value["write_us"].as_u64().unwrap_or(0),
                total_us: value["total_us"].as_u64().ok_or("missing total_us")?,
                family: value["family"].as_str().map(str::to_string),
            }),
            other => Err(format!("unknown event type {other:?}")),
        }
    }

    /// Parses an event from one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid JSON or a malformed event.
    pub fn from_jsonl_line(line: &str) -> Result<Event, String> {
        let value = magic_json::from_str(line).map_err(|e| e.to_string())?;
        Event::from_json(&value)
    }

    /// Leniently parses one JSONL line for tolerant readers.
    ///
    /// `Ok(None)` means the line is valid JSON carrying an accepted
    /// schema version but an event type this reader does not know — a
    /// *newer minor addition*, safe to skip (and count) rather than
    /// abort on.
    ///
    /// # Errors
    ///
    /// Everything else that [`Event::from_jsonl_line`] rejects: invalid
    /// JSON, an unsupported schema version, or a known event type with
    /// malformed fields.
    pub fn from_jsonl_line_lenient(line: &str) -> Result<Option<Event>, String> {
        let value = magic_json::from_str(line).map_err(|e| e.to_string())?;
        let version = value["v"].as_u64().ok_or("missing schema version \"v\"")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(format!("unsupported schema version {version}"));
        }
        match Event::from_json(&value) {
            Ok(event) => Ok(Some(event)),
            Err(e) if e.starts_with("unknown event type") => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(event: Event) {
        let line = event.to_jsonl_line();
        assert!(!line.contains('\n'), "one event per line: {line:?}");
        let back = Event::from_jsonl_line(&line).unwrap();
        assert_eq!(back, event);
    }

    #[test]
    fn every_event_kind_roundtrips_through_magic_json() {
        roundtrip(Event::Meta { command: "magic train --corpus mskcfg".into() });
        roundtrip(Event::SpanStart {
            id: 3,
            parent: Some(1),
            stage: "train.epoch".into(),
            ts_us: 1234,
            fields: vec![("epoch".into(), 4.0)],
        });
        roundtrip(Event::SpanStart {
            id: 9,
            parent: None,
            stage: "asm.parse".into(),
            ts_us: 0,
            fields: vec![],
        });
        roundtrip(Event::SpanEnd { id: 3, stage: "train.epoch".into(), ts_us: 99, dur_us: 42 });
        roundtrip(Event::Counter { name: "asm.instructions".into(), ts_us: 7, delta: 450.0 });
        roundtrip(Event::Histogram {
            name: "train.worker_busy_us".into(),
            ts_us: 8,
            value: 1250.5,
            fields: vec![("worker".into(), 1.0)],
        });
        roundtrip(Event::OpProfile {
            kind: "matmul".into(),
            phase: "fwd".into(),
            shape_class: "≤4Ki".into(),
            ts_us: 10,
            calls: 128,
            self_ns: 48_000,
            flops: 2_097_152,
            bytes_out: 65_536,
            fields: vec![("epoch".into(), 2.0)],
        });
        roundtrip(Event::ServeAccess {
            id: 42,
            ts_us: 1_000,
            status: 200,
            path: "/v1/predict".into(),
            batch: 4,
            bytes_in: 1_024,
            bytes_out: 256,
            parse_us: 12,
            extract_us: 340,
            queue_us: 1_800,
            execute_us: 950,
            write_us: 8,
            total_us: 3_110,
            family: Some("Ramnit".into()),
        });
        roundtrip(Event::ServeAccess {
            id: 43,
            ts_us: 2_000,
            status: 400,
            path: "/v1/predict".into(),
            batch: 0,
            bytes_in: 16,
            bytes_out: 40,
            parse_us: 5,
            extract_us: 0,
            queue_us: 0,
            execute_us: 0,
            write_us: 3,
            total_us: 8,
            family: None,
        });
    }

    #[test]
    fn unknown_version_and_type_are_rejected() {
        assert!(Event::from_jsonl_line(r#"{"v":4,"t":"meta"}"#).is_err());
        assert!(Event::from_jsonl_line(r#"{"v":0,"t":"meta"}"#).is_err());
        assert!(Event::from_jsonl_line(r#"{"v":1,"t":"frob"}"#).is_err());
        assert!(Event::from_jsonl_line("not json").is_err());
    }

    #[test]
    fn lenient_readers_skip_unknown_types_on_accepted_versions() {
        // A hypothetical v3 minor addition this reader doesn't know:
        // skipped, not fatal.
        assert_eq!(Event::from_jsonl_line_lenient(r#"{"v":3,"t":"frob"}"#), Ok(None));
        // But an unknown *version* is still fatal.
        assert!(Event::from_jsonl_line_lenient(r#"{"v":4,"t":"meta"}"#).is_err());
    }

    #[test]
    fn absent_family_is_omitted_from_the_wire() {
        let event = Event::ServeAccess {
            id: 1,
            ts_us: 0,
            status: 503,
            path: "/v1/predict".into(),
            batch: 0,
            bytes_in: 0,
            bytes_out: 0,
            parse_us: 0,
            extract_us: 0,
            queue_us: 0,
            execute_us: 0,
            write_us: 0,
            total_us: 1,
            family: None,
        };
        assert!(!event.to_jsonl_line().contains("family"));
    }

    #[test]
    fn v1_lines_still_parse() {
        // A line exactly as a magic-trace/1 writer produced it.
        let line = r#"{"v":1,"t":"span_end","id":3,"stage":"train.epoch","ts_us":99,"dur_us":42}"#;
        let event = Event::from_jsonl_line(line).unwrap();
        assert_eq!(
            event,
            Event::SpanEnd { id: 3, stage: "train.epoch".into(), ts_us: 99, dur_us: 42 }
        );
    }

    #[test]
    fn empty_fields_are_omitted_from_the_wire() {
        let event =
            Event::SpanStart { id: 1, parent: None, stage: "x".into(), ts_us: 0, fields: vec![] };
        assert!(!event.to_jsonl_line().contains("fields"));
    }
}
