#![warn(missing_docs)]

//! **magic-obs** — structured tracing and metrics for the MAGIC pipeline.
//!
//! The pipeline (asm → CFG → ACFG → DGCNN train/predict) is instrumented
//! with *spans* (named, nested timed regions), *counters* (accumulating
//! totals), and *histograms* (distributions of observations, mostly
//! timings). Events flow to a process-global [`Recorder`]:
//!
//! * [`NullRecorder`] — discards everything; with *no* recorder
//!   installed, instrumentation costs one relaxed atomic load.
//! * [`JsonlRecorder`] — streams `magic-trace/3` JSON lines (one event
//!   per line, written with `magic-json`) to a file or writer. The CLI's
//!   `--trace <path>` flag installs this, and `magic report --trace`
//!   aggregates the result via [`report::TraceSummary`] (readers accept
//!   v1 through v3 traces).
//!
//! The event schema ([`Event`]) and stage-name registry ([`stage`]) are
//! a versioned public contract, documented in `docs/OBSERVABILITY.md`.
//!
//! Live telemetry (as opposed to post-hoc trace files) is served by the
//! [`timeseries`] module: sliding-window counters and log-linear
//! histograms with interpolated quantiles, used by `magic serve` to
//! back its `/metrics` and `/statsz` endpoints. The `magic serve
//! --access-log` JSONL stream ([`Event::ServeAccess`], schema v3) is
//! aggregated offline by [`serve_report::ServeLogSummary`]
//! (`magic report --serve`).
//!
//! Telemetry is observational only: instrumented code takes no RNG
//! draws and makes no numeric decisions based on it, so a traced
//! training run is bitwise identical to an untraced one.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use magic_obs::{stage, JsonlRecorder, report::TraceSummary};
//!
//! // Stream a tiny trace to a file, as `magic train --trace` would.
//! let path = std::env::temp_dir().join("magic-obs-doctest.jsonl");
//! magic_obs::install(Arc::new(JsonlRecorder::create(&path)?));
//! magic_obs::meta("doctest");
//! {
//!     let _run = magic_obs::span(stage::TRAIN);
//!     let _epoch = magic_obs::span_fields(stage::TRAIN_EPOCH, &[("epoch", 0.0)]);
//!     magic_obs::counter(stage::C_TRAIN_SAMPLES, 16.0);
//! } // guards drop here -> span_end events are written
//! magic_obs::uninstall(); // flushes
//!
//! // Aggregate it back, as `magic report --trace` would.
//! let text = std::fs::read_to_string(&path)?;
//! let summary = TraceSummary::from_lines(text.lines()).map_err(std::io::Error::other)?;
//! assert_eq!(summary.events, 6); // meta + 2 span starts + counter + 2 span ends
//! assert!(summary.stages.iter().any(|s| s.stage == stage::TRAIN_EPOCH));
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), std::io::Error>(())
//! ```

mod event;
pub mod flamegraph;
mod recorder;
pub mod report;
mod runtime;
pub mod serve_report;
pub mod stage;
pub mod timeseries;

pub use event::{Event, MIN_SCHEMA_VERSION, SCHEMA_NAME, SCHEMA_VERSION};
pub use recorder::{JsonlRecorder, NullRecorder, Recorder};
pub use runtime::{
    counter, flush, histogram, histogram_fields, install, is_enabled, log, log_enabled, log_level,
    meta, op_profile, record, set_log_level, span, span_fields, uninstall, Level, Span,
};
