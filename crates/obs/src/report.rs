//! Trace aggregation: fold a `magic-trace/1` JSONL stream into
//! per-stage timing tables — the engine behind `magic report`.

use crate::event::Event;
use std::collections::HashMap;

/// Aggregated timings for one span stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name (see [`crate::stage`]).
    pub stage: String,
    /// Closed spans observed.
    pub count: u64,
    /// Sum of span durations, µs.
    pub total_us: u64,
    /// Sum of durations minus time spent in child spans, µs — where the
    /// time actually went.
    pub self_us: u64,
    /// Shortest span, µs.
    pub min_us: u64,
    /// Longest span, µs.
    pub max_us: u64,
}

/// Aggregated deltas for one counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterStats {
    /// Counter name.
    pub name: String,
    /// Number of delta events.
    pub count: u64,
    /// Sum of deltas.
    pub total: f64,
}

/// Aggregated observations for one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramStats {
    /// Histogram name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub total: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

/// Everything `magic report` knows about one trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// The `command` from the stream's meta header, if present.
    pub command: Option<String>,
    /// Total events parsed.
    pub events: u64,
    /// Wall-clock between the first and last event timestamp, µs.
    pub wall_us: u64,
    /// Sum of durations of *top-level* spans (no parent), µs. On a
    /// single-threaded trace this is at most `wall_us`; spans opened
    /// concurrently on worker threads are also parentless and can push
    /// it past 100% of wall.
    pub top_level_us: u64,
    /// Per-stage timings, largest total first.
    pub stages: Vec<StageStats>,
    /// Counters, by name.
    pub counters: Vec<CounterStats>,
    /// Histograms, by name.
    pub histograms: Vec<HistogramStats>,
    /// Spans that were opened but never closed (crash, or a still-open
    /// guard when the recorder was removed).
    pub unclosed_spans: u64,
}

impl TraceSummary {
    /// Aggregates an iterator of JSONL lines. Blank lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns `"line N: <why>"` for the first malformed line.
    pub fn from_lines<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Self, String> {
        let mut summary = TraceSummary::default();
        let mut first_ts: Option<u64> = None;
        let mut last_ts: u64 = 0;
        // id -> (stage, parent)
        let mut open: HashMap<u64, (String, Option<u64>)> = HashMap::new();
        // (stage, parent, dur) of every closed span
        let mut closed: Vec<(String, Option<u64>, u64)> = Vec::new();
        // parent id -> sum of closed children durations
        let mut child_us: HashMap<u64, u64> = HashMap::new();
        // id -> index into `closed` (to look up own children afterwards)
        let mut closed_by_id: HashMap<u64, usize> = HashMap::new();
        let mut counters: HashMap<String, CounterStats> = HashMap::new();
        let mut histograms: HashMap<String, HistogramStats> = HashMap::new();

        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event =
                Event::from_jsonl_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            summary.events += 1;
            let ts = match &event {
                Event::Meta { .. } => None,
                Event::SpanStart { ts_us, .. }
                | Event::SpanEnd { ts_us, .. }
                | Event::Counter { ts_us, .. }
                | Event::Histogram { ts_us, .. } => Some(*ts_us),
            };
            if let Some(ts) = ts {
                first_ts = Some(first_ts.map_or(ts, |f| f.min(ts)));
                last_ts = last_ts.max(ts);
            }
            match event {
                Event::Meta { command } => summary.command = Some(command),
                Event::SpanStart { id, parent, stage, .. } => {
                    open.insert(id, (stage, parent));
                }
                Event::SpanEnd { id, stage, dur_us, .. } => {
                    let (stage, parent) = open.remove(&id).unwrap_or((stage, None));
                    if let Some(p) = parent {
                        *child_us.entry(p).or_insert(0) += dur_us;
                    }
                    closed_by_id.insert(id, closed.len());
                    closed.push((stage, parent, dur_us));
                }
                Event::Counter { name, delta, .. } => {
                    let entry = counters
                        .entry(name.clone())
                        .or_insert(CounterStats { name, count: 0, total: 0.0 });
                    entry.count += 1;
                    entry.total += delta;
                }
                Event::Histogram { name, value, .. } => {
                    let entry = histograms.entry(name.clone()).or_insert(HistogramStats {
                        name,
                        count: 0,
                        total: 0.0,
                        min: f64::INFINITY,
                        max: f64::NEG_INFINITY,
                    });
                    entry.count += 1;
                    entry.total += value;
                    entry.min = entry.min.min(value);
                    entry.max = entry.max.max(value);
                }
            }
        }

        summary.wall_us = last_ts.saturating_sub(first_ts.unwrap_or(0));
        summary.unclosed_spans = open.len() as u64;

        let mut stages: HashMap<String, StageStats> = HashMap::new();
        for (id, &(ref stage, parent, dur_us)) in
            closed_by_id.iter().map(|(id, &i)| (id, &closed[i]))
        {
            let children = child_us.get(id).copied().unwrap_or(0);
            let entry = stages.entry(stage.clone()).or_insert(StageStats {
                stage: stage.clone(),
                count: 0,
                total_us: 0,
                self_us: 0,
                min_us: u64::MAX,
                max_us: 0,
            });
            entry.count += 1;
            entry.total_us += dur_us;
            entry.self_us += dur_us.saturating_sub(children);
            entry.min_us = entry.min_us.min(dur_us);
            entry.max_us = entry.max_us.max(dur_us);
            if parent.is_none() {
                summary.top_level_us += dur_us;
            }
        }

        summary.stages = stages.into_values().collect();
        summary.stages.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.stage.cmp(&b.stage)));
        summary.counters = counters.into_values().collect();
        summary.counters.sort_by(|a, b| a.name.cmp(&b.name));
        summary.histograms = histograms.into_values().collect();
        summary.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(summary)
    }

    /// Fraction of wall-clock covered by top-level spans, in `[0, …)` —
    /// the acceptance metric for "the trace explains where time went".
    pub fn coverage(&self) -> f64 {
        if self.wall_us == 0 {
            0.0
        } else {
            self.top_level_us as f64 / self.wall_us as f64
        }
    }

    /// Renders the human-readable aggregation table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(command) = &self.command {
            out.push_str(&format!("trace of: {command}\n"));
        }
        out.push_str(&format!(
            "{} events · wall {} · top-level span coverage {:.1}%\n",
            self.events,
            fmt_us(self.wall_us),
            self.coverage() * 100.0
        ));
        if self.unclosed_spans > 0 {
            out.push_str(&format!("warning: {} span(s) never closed\n", self.unclosed_spans));
        }

        if !self.stages.is_empty() {
            out.push_str(&format!(
                "\n{:<28} {:>7} {:>10} {:>10} {:>10} {:>7}\n",
                "SPAN STAGE", "count", "total", "mean", "self", "%wall"
            ));
            for s in &self.stages {
                let mean = s.total_us / s.count.max(1);
                let pct = if self.wall_us == 0 {
                    0.0
                } else {
                    100.0 * s.total_us as f64 / self.wall_us as f64
                };
                out.push_str(&format!(
                    "{:<28} {:>7} {:>10} {:>10} {:>10} {:>7.1}\n",
                    s.stage,
                    s.count,
                    fmt_us(s.total_us),
                    fmt_us(mean),
                    fmt_us(s.self_us),
                    pct
                ));
            }
        }

        if !self.counters.is_empty() {
            out.push_str(&format!("\n{:<28} {:>14} {:>7}\n", "COUNTER", "total", "events"));
            for c in &self.counters {
                out.push_str(&format!("{:<28} {:>14} {:>7}\n", c.name, c.total, c.count));
            }
        }

        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "\n{:<28} {:>7} {:>12} {:>12} {:>12}\n",
                "HISTOGRAM", "count", "mean", "min", "max"
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "{:<28} {:>7} {:>12.1} {:>12.1} {:>12.1}\n",
                    h.name,
                    h.count,
                    h.total / h.count.max(1) as f64,
                    h.min,
                    h.max
                ));
            }
        }
        out
    }
}

/// Formats a microsecond quantity at a human scale.
fn fmt_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(events: &[Event]) -> String {
        events.iter().map(|e| e.to_jsonl_line() + "\n").collect()
    }

    fn sample_trace() -> String {
        lines_of(&[
            Event::Meta { command: "magic train --corpus mskcfg".into() },
            Event::SpanStart {
                id: 1,
                parent: None,
                stage: "train.run".into(),
                ts_us: 0,
                fields: vec![],
            },
            Event::SpanStart {
                id: 2,
                parent: Some(1),
                stage: "train.epoch".into(),
                ts_us: 10,
                fields: vec![("epoch".into(), 0.0)],
            },
            Event::SpanEnd { id: 2, stage: "train.epoch".into(), ts_us: 60, dur_us: 50 },
            Event::SpanStart {
                id: 3,
                parent: Some(1),
                stage: "train.epoch".into(),
                ts_us: 60,
                fields: vec![("epoch".into(), 1.0)],
            },
            Event::SpanEnd { id: 3, stage: "train.epoch".into(), ts_us: 90, dur_us: 30 },
            Event::SpanEnd { id: 1, stage: "train.run".into(), ts_us: 100, dur_us: 100 },
            Event::Counter { name: "train.samples".into(), ts_us: 60, delta: 16.0 },
            Event::Counter { name: "train.samples".into(), ts_us: 90, delta: 16.0 },
            Event::Histogram {
                name: "train.worker_busy_us".into(),
                ts_us: 60,
                value: 40.0,
                fields: vec![("worker".into(), 0.0)],
            },
            Event::Histogram {
                name: "train.worker_busy_us".into(),
                ts_us: 60,
                value: 20.0,
                fields: vec![("worker".into(), 1.0)],
            },
        ])
    }

    #[test]
    fn aggregates_stages_counters_and_histograms() {
        let summary = TraceSummary::from_lines(sample_trace().lines()).unwrap();
        assert_eq!(summary.events, 11);
        assert_eq!(summary.wall_us, 100);
        assert_eq!(summary.top_level_us, 100);
        assert!((summary.coverage() - 1.0).abs() < 1e-9);
        assert_eq!(summary.unclosed_spans, 0);
        assert_eq!(summary.command.as_deref(), Some("magic train --corpus mskcfg"));

        let run = summary.stages.iter().find(|s| s.stage == "train.run").unwrap();
        assert_eq!((run.count, run.total_us), (1, 100));
        // 100us total minus 50+30 in child epochs = 20us self time.
        assert_eq!(run.self_us, 20);
        let epoch = summary.stages.iter().find(|s| s.stage == "train.epoch").unwrap();
        assert_eq!((epoch.count, epoch.total_us, epoch.min_us, epoch.max_us), (2, 80, 30, 50));
        assert_eq!(epoch.self_us, 80);

        let samples = &summary.counters[0];
        assert_eq!((samples.name.as_str(), samples.count, samples.total), ("train.samples", 2, 32.0));
        let busy = &summary.histograms[0];
        assert_eq!((busy.count, busy.total, busy.min, busy.max), (2, 60.0, 20.0, 40.0));
    }

    #[test]
    fn stages_sort_by_total_descending() {
        let summary = TraceSummary::from_lines(sample_trace().lines()).unwrap();
        assert_eq!(summary.stages[0].stage, "train.run");
        assert_eq!(summary.stages[1].stage, "train.epoch");
    }

    #[test]
    fn render_mentions_every_section() {
        let summary = TraceSummary::from_lines(sample_trace().lines()).unwrap();
        let table = summary.render();
        assert!(table.contains("SPAN STAGE"));
        assert!(table.contains("train.epoch"));
        assert!(table.contains("COUNTER"));
        assert!(table.contains("HISTOGRAM"));
        assert!(table.contains("coverage 100.0%"));
        assert!(!table.contains("warning"));
    }

    #[test]
    fn unclosed_spans_are_counted_not_fatal() {
        let text = lines_of(&[Event::SpanStart {
            id: 1,
            parent: None,
            stage: "train.run".into(),
            ts_us: 0,
            fields: vec![],
        }]);
        let summary = TraceSummary::from_lines(text.lines()).unwrap();
        assert_eq!(summary.unclosed_spans, 1);
        assert!(summary.render().contains("warning: 1 span(s) never closed"));
    }

    #[test]
    fn malformed_lines_are_reported_with_their_number() {
        let err = TraceSummary::from_lines("\n{\"v\":1,\"t\":\"nope\"}\n".lines()).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn empty_trace_is_an_empty_summary() {
        let summary = TraceSummary::from_lines("".lines()).unwrap();
        assert_eq!(summary.events, 0);
        assert_eq!(summary.coverage(), 0.0);
    }

    #[test]
    fn fmt_us_picks_readable_units() {
        assert_eq!(fmt_us(950), "950us");
        assert_eq!(fmt_us(25_000), "25.0ms");
        assert_eq!(fmt_us(12_340_000), "12.34s");
    }
}
