//! Trace aggregation: fold a `magic-trace/1` or `magic-trace/2` JSONL
//! stream into per-stage timing and per-op profile tables — the engine
//! behind `magic report` and `magic profile`.

use crate::event::Event;
use std::collections::HashMap;

/// Aggregated timings for one span stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name (see [`crate::stage`]).
    pub stage: String,
    /// Closed spans observed.
    pub count: u64,
    /// Sum of span durations, µs.
    pub total_us: u64,
    /// Sum of durations minus time spent in child spans, µs — where the
    /// time actually went.
    pub self_us: u64,
    /// Shortest span, µs.
    pub min_us: u64,
    /// Longest span, µs.
    pub max_us: u64,
}

/// Aggregated deltas for one counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterStats {
    /// Counter name.
    pub name: String,
    /// Number of delta events.
    pub count: u64,
    /// Sum of deltas.
    pub total: f64,
}

/// Aggregated observations for one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramStats {
    /// Histogram name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub total: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

/// Aggregated `op_profile` rows for one `(kind, phase, shape class)`.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfileStats {
    /// Op kind name (tape op or host pseudo-op).
    pub kind: String,
    /// `"fwd"`, `"bwd"`, or `"host"`.
    pub phase: String,
    /// Output-size bucket label (e.g. `"≤4Ki"`).
    pub shape_class: String,
    /// Op executions aggregated into this row.
    pub calls: u64,
    /// Summed self time, nanoseconds.
    pub self_ns: u64,
    /// Summed floating-point operations.
    pub flops: u64,
    /// Summed output bytes.
    pub bytes_out: u64,
}

/// Everything `magic report` knows about one trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// The `command` from the stream's meta header, if present.
    pub command: Option<String>,
    /// Total events parsed.
    pub events: u64,
    /// Wall-clock between the first and last event timestamp, µs.
    pub wall_us: u64,
    /// Sum of durations of *top-level* spans (no parent), µs. On a
    /// single-threaded trace this is at most `wall_us`; spans opened
    /// concurrently on worker threads are also parentless and can push
    /// it past 100% of wall.
    pub top_level_us: u64,
    /// Per-stage timings, largest total first.
    pub stages: Vec<StageStats>,
    /// Counters, by name.
    pub counters: Vec<CounterStats>,
    /// Histograms, by name.
    pub histograms: Vec<HistogramStats>,
    /// Per-op profile rows (schema v2), largest self time first.
    pub ops: Vec<OpProfileStats>,
    /// Spans that were opened but never closed (crash, or a still-open
    /// guard when the recorder was removed).
    pub unclosed_spans: u64,
    /// Lines skipped instead of aborting on: events of an unknown type
    /// (a newer minor schema addition), plus an unparseable *final* line
    /// (the truncated tail a killed run leaves behind). Malformed lines
    /// anywhere else are still a hard error.
    pub malformed_lines: u64,
}

impl TraceSummary {
    /// Aggregates an iterator of JSONL lines. Blank lines are skipped.
    ///
    /// Two classes of damage are tolerated rather than fatal, so reports
    /// still work on traces from killed runs and from newer writers:
    /// events of an unknown type (valid JSON, accepted schema version)
    /// are skipped anywhere, and the *final* non-blank line may be
    /// unparseable (a process killed mid-write truncates it). Both are
    /// counted in [`TraceSummary::malformed_lines`].
    ///
    /// # Errors
    ///
    /// Returns `"line N: <why>"` for the first malformed line that is
    /// neither of the above — including any line with an unsupported
    /// schema version, which signals a reader too old for the whole file.
    pub fn from_lines<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Self, String> {
        let mut summary = TraceSummary::default();
        let mut first_ts: Option<u64> = None;
        let mut last_ts: u64 = 0;
        // id -> (stage, parent)
        let mut open: HashMap<u64, (String, Option<u64>)> = HashMap::new();
        // (stage, parent, dur) of every closed span
        let mut closed: Vec<(String, Option<u64>, u64)> = Vec::new();
        // parent id -> sum of closed children durations
        let mut child_us: HashMap<u64, u64> = HashMap::new();
        // id -> index into `closed` (to look up own children afterwards)
        let mut closed_by_id: HashMap<u64, usize> = HashMap::new();
        let mut counters: HashMap<String, CounterStats> = HashMap::new();
        let mut histograms: HashMap<String, HistogramStats> = HashMap::new();
        let mut ops: HashMap<(String, String, String), OpProfileStats> = HashMap::new();

        // Buffered so the truncated-tail rule can know which non-blank
        // line is the last one.
        let numbered: Vec<(usize, &str)> = lines
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty())
            .collect();
        let last = numbered.len().saturating_sub(1);

        for (pos, &(lineno, line)) in numbered.iter().enumerate() {
            let event = match Event::from_jsonl_line_lenient(line) {
                Ok(Some(event)) => event,
                Ok(None) => {
                    // Unknown event type from a newer writer: skip.
                    summary.malformed_lines += 1;
                    continue;
                }
                Err(_) if pos == last => {
                    // Truncated tail of a killed run: skip.
                    summary.malformed_lines += 1;
                    continue;
                }
                Err(e) => return Err(format!("line {}: {e}", lineno + 1)),
            };
            summary.events += 1;
            let ts = match &event {
                Event::Meta { .. } => None,
                Event::SpanStart { ts_us, .. }
                | Event::SpanEnd { ts_us, .. }
                | Event::Counter { ts_us, .. }
                | Event::Histogram { ts_us, .. }
                | Event::OpProfile { ts_us, .. }
                | Event::ServeAccess { ts_us, .. } => Some(*ts_us),
            };
            if let Some(ts) = ts {
                first_ts = Some(first_ts.map_or(ts, |f| f.min(ts)));
                last_ts = last_ts.max(ts);
            }
            match event {
                Event::Meta { command } => summary.command = Some(command),
                Event::SpanStart { id, parent, stage, .. } => {
                    open.insert(id, (stage, parent));
                }
                Event::SpanEnd { id, stage, dur_us, .. } => {
                    let (stage, parent) = open.remove(&id).unwrap_or((stage, None));
                    if let Some(p) = parent {
                        *child_us.entry(p).or_insert(0) += dur_us;
                    }
                    closed_by_id.insert(id, closed.len());
                    closed.push((stage, parent, dur_us));
                }
                Event::Counter { name, delta, .. } => {
                    let entry = counters
                        .entry(name.clone())
                        .or_insert(CounterStats { name, count: 0, total: 0.0 });
                    entry.count += 1;
                    entry.total += delta;
                }
                Event::Histogram { name, value, .. } => {
                    let entry = histograms.entry(name.clone()).or_insert(HistogramStats {
                        name,
                        count: 0,
                        total: 0.0,
                        min: f64::INFINITY,
                        max: f64::NEG_INFINITY,
                    });
                    entry.count += 1;
                    entry.total += value;
                    entry.min = entry.min.min(value);
                    entry.max = entry.max.max(value);
                }
                Event::OpProfile { kind, phase, shape_class, calls, self_ns, flops, bytes_out, .. } => {
                    let entry = ops
                        .entry((kind.clone(), phase.clone(), shape_class.clone()))
                        .or_insert(OpProfileStats {
                            kind,
                            phase,
                            shape_class,
                            calls: 0,
                            self_ns: 0,
                            flops: 0,
                            bytes_out: 0,
                        });
                    entry.calls += calls;
                    entry.self_ns += self_ns;
                    entry.flops += flops;
                    entry.bytes_out += bytes_out;
                }
                Event::ServeAccess { status, total_us, .. } => {
                    // Access-log lines embedded in a general trace fold
                    // into the existing tables: a per-status counter
                    // plus an end-to-end latency histogram. The full
                    // stage breakdown lives in `magic report --serve`
                    // ([`crate::serve_report::ServeLogSummary`]).
                    let name = format!("serve.access.{status}");
                    let entry = counters
                        .entry(name.clone())
                        .or_insert(CounterStats { name, count: 0, total: 0.0 });
                    entry.count += 1;
                    entry.total += 1.0;
                    let name = "serve.access.total_us".to_string();
                    let entry = histograms.entry(name.clone()).or_insert(HistogramStats {
                        name,
                        count: 0,
                        total: 0.0,
                        min: f64::INFINITY,
                        max: f64::NEG_INFINITY,
                    });
                    entry.count += 1;
                    entry.total += total_us as f64;
                    entry.min = entry.min.min(total_us as f64);
                    entry.max = entry.max.max(total_us as f64);
                }
            }
        }

        summary.wall_us = last_ts.saturating_sub(first_ts.unwrap_or(0));
        summary.unclosed_spans = open.len() as u64;

        let mut stages: HashMap<String, StageStats> = HashMap::new();
        for (id, &(ref stage, parent, dur_us)) in
            closed_by_id.iter().map(|(id, &i)| (id, &closed[i]))
        {
            let children = child_us.get(id).copied().unwrap_or(0);
            let entry = stages.entry(stage.clone()).or_insert(StageStats {
                stage: stage.clone(),
                count: 0,
                total_us: 0,
                self_us: 0,
                min_us: u64::MAX,
                max_us: 0,
            });
            entry.count += 1;
            entry.total_us += dur_us;
            entry.self_us += dur_us.saturating_sub(children);
            entry.min_us = entry.min_us.min(dur_us);
            entry.max_us = entry.max_us.max(dur_us);
            if parent.is_none() {
                summary.top_level_us += dur_us;
            }
        }

        summary.stages = stages.into_values().collect();
        summary.stages.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.stage.cmp(&b.stage)));
        summary.counters = counters.into_values().collect();
        summary.counters.sort_by(|a, b| a.name.cmp(&b.name));
        summary.histograms = histograms.into_values().collect();
        summary.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        summary.ops = ops.into_values().collect();
        summary.ops.sort_by(|a, b| {
            b.self_ns
                .cmp(&a.self_ns)
                .then(a.kind.cmp(&b.kind))
                .then(a.phase.cmp(&b.phase))
                .then(a.shape_class.cmp(&b.shape_class))
        });
        Ok(summary)
    }

    /// Sum of self time over all op-profile rows, nanoseconds.
    pub fn ops_total_self_ns(&self) -> u64 {
        self.ops.iter().map(|o| o.self_ns).sum()
    }

    /// Fraction of wall-clock covered by top-level spans, in `[0, …)` —
    /// the acceptance metric for "the trace explains where time went".
    pub fn coverage(&self) -> f64 {
        if self.wall_us == 0 {
            0.0
        } else {
            self.top_level_us as f64 / self.wall_us as f64
        }
    }

    /// Renders the human-readable aggregation table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(command) = &self.command {
            out.push_str(&format!("trace of: {command}\n"));
        }
        out.push_str(&format!(
            "{} events · wall {} · top-level span coverage {:.1}%\n",
            self.events,
            fmt_us(self.wall_us),
            self.coverage() * 100.0
        ));
        if self.unclosed_spans > 0 {
            out.push_str(&format!("warning: {} span(s) never closed\n", self.unclosed_spans));
        }
        if self.malformed_lines > 0 {
            out.push_str(&format!(
                "warning: {} malformed/unknown line(s) skipped\n",
                self.malformed_lines
            ));
        }

        if !self.stages.is_empty() {
            out.push_str(&format!(
                "\n{:<28} {:>7} {:>10} {:>10} {:>10} {:>7}\n",
                "SPAN STAGE", "count", "total", "mean", "self", "%wall"
            ));
            for s in &self.stages {
                let mean = s.total_us / s.count.max(1);
                let pct = if self.wall_us == 0 {
                    0.0
                } else {
                    100.0 * s.total_us as f64 / self.wall_us as f64
                };
                out.push_str(&format!(
                    "{:<28} {:>7} {:>10} {:>10} {:>10} {:>7.1}\n",
                    s.stage,
                    s.count,
                    fmt_us(s.total_us),
                    fmt_us(mean),
                    fmt_us(s.self_us),
                    pct
                ));
            }
        }

        if !self.counters.is_empty() {
            out.push_str(&format!("\n{:<28} {:>14} {:>7}\n", "COUNTER", "total", "events"));
            for c in &self.counters {
                out.push_str(&format!("{:<28} {:>14} {:>7}\n", c.name, c.total, c.count));
            }
        }

        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "\n{:<28} {:>7} {:>12} {:>12} {:>12}\n",
                "HISTOGRAM", "count", "mean", "min", "max"
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "{:<28} {:>7} {:>12.1} {:>12.1} {:>12.1}\n",
                    h.name,
                    h.count,
                    h.total / h.count.max(1) as f64,
                    h.min,
                    h.max
                ));
            }
        }

        if !self.ops.is_empty() {
            out.push('\n');
            out.push_str(&self.render_ops());
        }
        out
    }

    /// Renders the per-op profile table (schema v2 `op_profile` rows):
    /// self time, share of total op self time, call count, achieved
    /// FLOP/s, and output bytes, largest self time first.
    pub fn render_ops(&self) -> String {
        let mut out = String::new();
        let total_ns = self.ops_total_self_ns();
        out.push_str(&format!(
            "{:<22} {:>5} {:>8} {:>9} {:>6} {:>10} {:>10} {:>10}\n",
            "OP", "phase", "shape", "calls", "self%", "self", "flop/s", "bytes"
        ));
        for o in &self.ops {
            let pct = if total_ns == 0 {
                0.0
            } else {
                100.0 * o.self_ns as f64 / total_ns as f64
            };
            let flops_per_s = if o.self_ns == 0 {
                0.0
            } else {
                o.flops as f64 / (o.self_ns as f64 / 1e9)
            };
            out.push_str(&format!(
                "{:<22} {:>5} {:>8} {:>9} {:>6.1} {:>10} {:>10} {:>10}\n",
                o.kind,
                o.phase,
                o.shape_class,
                o.calls,
                pct,
                fmt_us(o.self_ns / 1_000),
                fmt_rate(flops_per_s),
                fmt_bytes(o.bytes_out),
            ));
        }
        out
    }
}

/// Formats a byte quantity at a human scale (`1.5GiB`, `32KiB`, …).
fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= (1u64 << 30) as f64 {
        format!("{:.2}GiB", b / (1u64 << 30) as f64)
    } else if b >= (1u64 << 20) as f64 {
        format!("{:.1}MiB", b / (1u64 << 20) as f64)
    } else if b >= 1024.0 {
        format!("{:.1}KiB", b / 1024.0)
    } else {
        format!("{bytes}B")
    }
}

/// Formats an ops-per-second rate at a human scale (`1.2G`, `340M`, …).
fn fmt_rate(per_s: f64) -> String {
    if per_s >= 1e9 {
        format!("{:.2}G", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.1}M", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.1}K", per_s / 1e3)
    } else {
        format!("{per_s:.0}")
    }
}

/// Formats a microsecond quantity at a human scale.
fn fmt_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(events: &[Event]) -> String {
        events.iter().map(|e| e.to_jsonl_line() + "\n").collect()
    }

    fn sample_trace() -> String {
        lines_of(&[
            Event::Meta { command: "magic train --corpus mskcfg".into() },
            Event::SpanStart {
                id: 1,
                parent: None,
                stage: "train.run".into(),
                ts_us: 0,
                fields: vec![],
            },
            Event::SpanStart {
                id: 2,
                parent: Some(1),
                stage: "train.epoch".into(),
                ts_us: 10,
                fields: vec![("epoch".into(), 0.0)],
            },
            Event::SpanEnd { id: 2, stage: "train.epoch".into(), ts_us: 60, dur_us: 50 },
            Event::SpanStart {
                id: 3,
                parent: Some(1),
                stage: "train.epoch".into(),
                ts_us: 60,
                fields: vec![("epoch".into(), 1.0)],
            },
            Event::SpanEnd { id: 3, stage: "train.epoch".into(), ts_us: 90, dur_us: 30 },
            Event::SpanEnd { id: 1, stage: "train.run".into(), ts_us: 100, dur_us: 100 },
            Event::Counter { name: "train.samples".into(), ts_us: 60, delta: 16.0 },
            Event::Counter { name: "train.samples".into(), ts_us: 90, delta: 16.0 },
            Event::Histogram {
                name: "train.worker_busy_us".into(),
                ts_us: 60,
                value: 40.0,
                fields: vec![("worker".into(), 0.0)],
            },
            Event::Histogram {
                name: "train.worker_busy_us".into(),
                ts_us: 60,
                value: 20.0,
                fields: vec![("worker".into(), 1.0)],
            },
        ])
    }

    #[test]
    fn aggregates_stages_counters_and_histograms() {
        let summary = TraceSummary::from_lines(sample_trace().lines()).unwrap();
        assert_eq!(summary.events, 11);
        assert_eq!(summary.wall_us, 100);
        assert_eq!(summary.top_level_us, 100);
        assert!((summary.coverage() - 1.0).abs() < 1e-9);
        assert_eq!(summary.unclosed_spans, 0);
        assert_eq!(summary.command.as_deref(), Some("magic train --corpus mskcfg"));

        let run = summary.stages.iter().find(|s| s.stage == "train.run").unwrap();
        assert_eq!((run.count, run.total_us), (1, 100));
        // 100us total minus 50+30 in child epochs = 20us self time.
        assert_eq!(run.self_us, 20);
        let epoch = summary.stages.iter().find(|s| s.stage == "train.epoch").unwrap();
        assert_eq!((epoch.count, epoch.total_us, epoch.min_us, epoch.max_us), (2, 80, 30, 50));
        assert_eq!(epoch.self_us, 80);

        let samples = &summary.counters[0];
        assert_eq!((samples.name.as_str(), samples.count, samples.total), ("train.samples", 2, 32.0));
        let busy = &summary.histograms[0];
        assert_eq!((busy.count, busy.total, busy.min, busy.max), (2, 60.0, 20.0, 40.0));
    }

    #[test]
    fn stages_sort_by_total_descending() {
        let summary = TraceSummary::from_lines(sample_trace().lines()).unwrap();
        assert_eq!(summary.stages[0].stage, "train.run");
        assert_eq!(summary.stages[1].stage, "train.epoch");
    }

    #[test]
    fn render_mentions_every_section() {
        let summary = TraceSummary::from_lines(sample_trace().lines()).unwrap();
        let table = summary.render();
        assert!(table.contains("SPAN STAGE"));
        assert!(table.contains("train.epoch"));
        assert!(table.contains("COUNTER"));
        assert!(table.contains("HISTOGRAM"));
        assert!(table.contains("coverage 100.0%"));
        assert!(!table.contains("warning"));
    }

    #[test]
    fn unclosed_spans_are_counted_not_fatal() {
        let text = lines_of(&[Event::SpanStart {
            id: 1,
            parent: None,
            stage: "train.run".into(),
            ts_us: 0,
            fields: vec![],
        }]);
        let summary = TraceSummary::from_lines(text.lines()).unwrap();
        assert_eq!(summary.unclosed_spans, 1);
        assert!(summary.render().contains("warning: 1 span(s) never closed"));
    }

    #[test]
    fn malformed_mid_file_lines_are_reported_with_their_number() {
        // An invalid-JSON line that is NOT the last non-blank line is a
        // hard error, reported with its 1-based line number.
        let err = TraceSummary::from_lines("\nnot json\n{\"v\":1,\"t\":\"counter\",\"name\":\"x\",\"ts_us\":1,\"delta\":1}\n".lines())
            .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        // So is an unsupported schema version, anywhere.
        let err = TraceSummary::from_lines(
            "{\"v\":99,\"t\":\"meta\"}\n{\"v\":1,\"t\":\"counter\",\"name\":\"x\",\"ts_us\":1,\"delta\":1}\n"
                .lines(),
        )
        .unwrap_err();
        assert!(err.contains("unsupported schema version"), "{err}");
    }

    #[test]
    fn truncated_final_line_is_skipped_and_counted() {
        // A killed run truncates the last line mid-write; the rest of
        // the trace must still aggregate.
        let mut text = sample_trace();
        text.push_str("{\"v\":2,\"t\":\"span_en"); // no trailing newline either
        let summary = TraceSummary::from_lines(text.lines()).unwrap();
        assert_eq!(summary.malformed_lines, 1);
        assert_eq!(summary.events, 11, "all intact events still counted");
        assert_eq!(summary.wall_us, 100);
        assert!(summary.render().contains("1 malformed/unknown line(s) skipped"));
    }

    #[test]
    fn unknown_event_types_are_skipped_anywhere() {
        // A newer writer may add event types; readers skip + count them
        // even mid-file.
        let mut lines = sample_trace();
        let tail = lines.split_off(lines.find('\n').unwrap() + 1);
        lines.push_str("{\"v\":2,\"t\":\"from_the_future\",\"ts_us\":5}\n");
        lines.push_str(&tail);
        let summary = TraceSummary::from_lines(lines.lines()).unwrap();
        assert_eq!(summary.malformed_lines, 1);
        assert_eq!(summary.events, 11);
    }

    #[test]
    fn op_profile_rows_aggregate_and_render() {
        let text = lines_of(&[
            Event::OpProfile {
                kind: "matmul".into(),
                phase: "fwd".into(),
                shape_class: "≤4Ki".into(),
                ts_us: 1,
                calls: 10,
                self_ns: 30_000,
                flops: 600_000,
                bytes_out: 4_096,
                fields: vec![("epoch".into(), 0.0)],
            },
            Event::OpProfile {
                kind: "matmul".into(),
                phase: "fwd".into(),
                shape_class: "≤4Ki".into(),
                ts_us: 2,
                calls: 10,
                self_ns: 30_000,
                flops: 600_000,
                bytes_out: 4_096,
                fields: vec![("epoch".into(), 1.0)],
            },
            Event::OpProfile {
                kind: "relu".into(),
                phase: "bwd".into(),
                shape_class: "≤1Ki".into(),
                ts_us: 2,
                calls: 10,
                self_ns: 10_000,
                flops: 10_240,
                bytes_out: 1_024,
                fields: vec![],
            },
        ]);
        let summary = TraceSummary::from_lines(text.lines()).unwrap();
        assert_eq!(summary.ops.len(), 2, "same key rows merged across epochs");
        assert_eq!(summary.ops[0].kind, "matmul", "largest self time first");
        assert_eq!(summary.ops[0].calls, 20);
        assert_eq!(summary.ops[0].self_ns, 60_000);
        assert_eq!(summary.ops_total_self_ns(), 70_000);

        let table = summary.render();
        assert!(table.contains("OP"), "{table}");
        assert!(table.contains("matmul"));
        let ops_table = summary.render_ops();
        assert!(ops_table.contains("85.7"), "matmul share of self time: {ops_table}");
    }

    #[test]
    fn empty_trace_is_an_empty_summary() {
        let summary = TraceSummary::from_lines("".lines()).unwrap();
        assert_eq!(summary.events, 0);
        assert_eq!(summary.coverage(), 0.0);
    }

    #[test]
    fn fmt_us_picks_readable_units() {
        assert_eq!(fmt_us(950), "950us");
        assert_eq!(fmt_us(25_000), "25.0ms");
        assert_eq!(fmt_us(12_340_000), "12.34s");
    }

    #[test]
    fn fmt_bytes_picks_readable_units() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(4_096), "4.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00GiB");
    }
}
