//! Offline aggregation of `magic serve` access logs: fold the
//! [`Event::ServeAccess`] JSONL stream written by `--access-log` into
//! per-status counts, a stage-latency breakdown table, and a
//! slowest-requests table — the `magic report --serve <access.jsonl>`
//! backend.
//!
//! Unlike the live `/metrics` window (approximate quantiles from the
//! log-linear histogram), this reader holds every sample, so the
//! percentiles here are exact nearest-rank statistics — the offline
//! ground truth to reconcile live telemetry against.

use crate::event::Event;

/// Exact percentile statistics over one lifecycle stage.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Stage name (`parse`, `extract`, `queue`, `execute`, `write`,
    /// `total`).
    pub stage: &'static str,
    /// Samples aggregated (one per 200 predict response).
    pub count: u64,
    /// Mean duration, µs.
    pub mean_us: f64,
    /// Exact median, µs.
    pub p50_us: u64,
    /// Exact 90th percentile, µs.
    pub p90_us: u64,
    /// Exact 99th percentile, µs.
    pub p99_us: u64,
    /// Largest observed duration, µs.
    pub max_us: u64,
}

/// One row of the slowest-requests table.
#[derive(Debug, Clone)]
pub struct SlowRow {
    /// Request id from the access log.
    pub id: u64,
    /// HTTP status.
    pub status: u16,
    /// Batch size that carried the forward pass.
    pub batch: u64,
    /// End-to-end duration, µs.
    pub total_us: u64,
    /// Queue-wait share of the total, µs.
    pub queue_us: u64,
    /// Execute share of the total, µs.
    pub execute_us: u64,
    /// Predicted family, when the request got one.
    pub family: Option<String>,
}

/// Aggregated view of one access-log file.
#[derive(Debug, Clone, Default)]
pub struct ServeLogSummary {
    /// Access events aggregated.
    pub requests: u64,
    /// `(status, count)` pairs, ascending by status.
    pub statuses: Vec<(u16, u64)>,
    /// Stage-latency breakdown over 200 `/v1/predict` responses.
    pub stages: Vec<StageRow>,
    /// The slowest requests by `total_us`, descending (up to 10).
    pub slowest: Vec<SlowRow>,
    /// Total request bytes read.
    pub bytes_in: u64,
    /// Total response bytes written.
    pub bytes_out: u64,
    /// Non-access events in the stream (a mixed `--trace` file is
    /// fine; they are counted and skipped).
    pub other_events: u64,
    /// Unknown-event or truncated-tail lines skipped.
    pub malformed_lines: u64,
}

/// Exact nearest-rank percentile of a sorted sample vector.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn stage_row(stage: &'static str, mut samples: Vec<u64>) -> StageRow {
    samples.sort_unstable();
    let count = samples.len() as u64;
    let mean_us = if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<u64>() as f64 / samples.len() as f64
    };
    StageRow {
        stage,
        count,
        mean_us,
        p50_us: percentile(&samples, 0.50),
        p90_us: percentile(&samples, 0.90),
        p99_us: percentile(&samples, 0.99),
        max_us: samples.last().copied().unwrap_or(0),
    }
}

impl ServeLogSummary {
    /// Folds access-log JSONL lines into a summary.
    ///
    /// Mirrors [`crate::report::TraceSummary`]'s tolerance rules: an
    /// unknown event type on an accepted schema version is skipped and
    /// counted, a malformed *final* line (a crash mid-write) is
    /// tolerated, and any earlier malformed line is a hard error with
    /// its line number.
    ///
    /// # Errors
    ///
    /// Returns the first hard decode error, prefixed `line N:`.
    pub fn from_lines<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Self, String> {
        let numbered: Vec<(usize, &str)> =
            lines.enumerate().filter(|(_, l)| !l.trim().is_empty()).collect();
        let last = numbered.len().saturating_sub(1);

        let mut summary = ServeLogSummary::default();
        let mut statuses: Vec<(u16, u64)> = Vec::new();
        let mut parse = Vec::new();
        let mut extract = Vec::new();
        let mut queue = Vec::new();
        let mut execute = Vec::new();
        let mut write = Vec::new();
        let mut total = Vec::new();
        let mut slow: Vec<SlowRow> = Vec::new();

        for (pos, &(lineno, line)) in numbered.iter().enumerate() {
            let event = match Event::from_jsonl_line_lenient(line) {
                Ok(Some(event)) => event,
                Ok(None) => {
                    summary.malformed_lines += 1;
                    continue;
                }
                Err(_) if pos == last => {
                    summary.malformed_lines += 1;
                    continue;
                }
                Err(e) => return Err(format!("line {}: {e}", lineno + 1)),
            };
            let Event::ServeAccess {
                id,
                status,
                path,
                batch,
                bytes_in,
                bytes_out,
                parse_us,
                extract_us,
                queue_us,
                execute_us,
                write_us,
                total_us,
                family,
                ..
            } = event
            else {
                summary.other_events += 1;
                continue;
            };
            summary.requests += 1;
            summary.bytes_in += bytes_in;
            summary.bytes_out += bytes_out;
            match statuses.iter_mut().find(|(s, _)| *s == status) {
                Some((_, n)) => *n += 1,
                None => statuses.push((status, 1)),
            }
            if status == 200 && path == "/v1/predict" {
                parse.push(parse_us);
                extract.push(extract_us);
                queue.push(queue_us);
                execute.push(execute_us);
                write.push(write_us);
                total.push(total_us);
            }
            slow.push(SlowRow { id, status, batch, total_us, queue_us, execute_us, family });
        }

        statuses.sort_unstable_by_key(|&(s, _)| s);
        summary.statuses = statuses;
        summary.stages = vec![
            stage_row("parse", parse),
            stage_row("extract", extract),
            stage_row("queue", queue),
            stage_row("execute", execute),
            stage_row("write", write),
            stage_row("total", total),
        ];
        slow.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.id.cmp(&b.id)));
        slow.truncate(10);
        summary.slowest = slow;
        Ok(summary)
    }

    /// Renders the human-readable breakdown tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "access log: {} request(s), {} bytes in, {} bytes out\n",
            self.requests, self.bytes_in, self.bytes_out
        ));
        if self.other_events > 0 {
            out.push_str(&format!("  ({} non-access event(s) skipped)\n", self.other_events));
        }
        if self.malformed_lines > 0 {
            out.push_str(&format!("  ({} malformed line(s) skipped)\n", self.malformed_lines));
        }

        out.push_str("\nSTATUS       count\n");
        for &(status, count) in &self.statuses {
            out.push_str(&format!("{status:<10} {count:>7}\n"));
        }

        out.push_str(
            "\nSTAGE (200 /v1/predict)   count     mean_us      p50_us      p90_us      \
             p99_us      max_us\n",
        );
        for row in &self.stages {
            out.push_str(&format!(
                "{:<24} {:>7} {:>11.1} {:>11} {:>11} {:>11} {:>11}\n",
                row.stage, row.count, row.mean_us, row.p50_us, row.p90_us, row.p99_us, row.max_us
            ));
        }

        if !self.slowest.is_empty() {
            out.push_str(
                "\nSLOWEST REQUESTS          id  status  batch    total_us    queue_us  \
                 execute_us  family\n",
            );
            for row in &self.slowest {
                out.push_str(&format!(
                    "{:>28} {:>7} {:>6} {:>11} {:>11} {:>11}  {}\n",
                    row.id,
                    row.status,
                    row.batch,
                    row.total_us,
                    row.queue_us,
                    row.execute_us,
                    row.family.as_deref().unwrap_or("-")
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(id: u64, status: u16, total_us: u64, queue_us: u64) -> Event {
        Event::ServeAccess {
            id,
            ts_us: id * 100,
            status,
            path: "/v1/predict".into(),
            batch: 2,
            bytes_in: 100,
            bytes_out: 50,
            parse_us: 10,
            extract_us: 20,
            queue_us,
            execute_us: 30,
            write_us: 5,
            total_us,
            family: if status == 200 { Some("Family0".into()) } else { None },
        }
    }

    fn lines_of(events: &[Event]) -> String {
        events.iter().map(|e| e.to_jsonl_line() + "\n").collect()
    }

    #[test]
    fn aggregates_statuses_stages_and_slowest() {
        let text = lines_of(&[
            access(1, 200, 1_000, 100),
            access(2, 200, 3_000, 900),
            access(3, 400, 50, 0),
            access(4, 200, 2_000, 400),
        ]);
        let summary = ServeLogSummary::from_lines(text.lines()).unwrap();
        assert_eq!(summary.requests, 4);
        assert_eq!(summary.statuses, vec![(200, 3), (400, 1)]);
        let total = summary.stages.iter().find(|r| r.stage == "total").unwrap();
        assert_eq!(total.count, 3); // the 400 is excluded from the breakdown
        assert_eq!(total.p50_us, 2_000);
        assert_eq!(total.max_us, 3_000);
        assert_eq!(summary.slowest[0].id, 2);
        assert_eq!(summary.slowest[0].total_us, 3_000);
        let rendered = summary.render();
        assert!(rendered.contains("access log: 4 request(s)"));
        assert!(rendered.contains("execute"));
        assert!(rendered.contains("Family0"));
    }

    #[test]
    fn non_access_events_are_counted_and_skipped() {
        let text = lines_of(&[
            Event::Meta { command: "magic serve".into() },
            access(1, 200, 500, 10),
        ]);
        let summary = ServeLogSummary::from_lines(text.lines()).unwrap();
        assert_eq!(summary.requests, 1);
        assert_eq!(summary.other_events, 1);
    }

    #[test]
    fn truncated_final_line_is_tolerated_but_earlier_garbage_is_fatal() {
        let mut text = lines_of(&[access(1, 200, 500, 10)]);
        text.push_str("{\"v\":3,\"t\":\"serve_ac"); // crash mid-write
        let summary = ServeLogSummary::from_lines(text.lines()).unwrap();
        assert_eq!(summary.requests, 1);
        assert_eq!(summary.malformed_lines, 1);

        let bad = format!("not json\n{}", lines_of(&[access(1, 200, 500, 10)]));
        let err = ServeLogSummary::from_lines(bad.lines()).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn empty_log_renders_without_panicking() {
        let summary = ServeLogSummary::from_lines("".lines()).unwrap();
        assert_eq!(summary.requests, 0);
        assert!(summary.render().contains("access log: 0 request(s)"));
    }
}
