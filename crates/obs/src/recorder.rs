//! Recorder backends: where trace events go.

use crate::event::Event;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A sink for telemetry events.
///
/// Implementations must be cheap and infallible from the caller's point
/// of view: recording telemetry must never abort or perturb the
/// pipeline, so I/O errors are swallowed (a recorder may track them
/// internally).
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output. Called on [`crate::uninstall`] and by
    /// [`crate::flush`]; a no-op by default.
    fn flush(&self) {}
}

/// Discards every event — the explicit "telemetry off" backend.
///
/// Installing a `NullRecorder` exercises the full instrumentation path
/// (span ids, timestamps) without producing output; it exists so tests
/// can prove instrumentation does not perturb results.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: &Event) {}
}

/// Streams events as JSON Lines (`magic-trace/1` schema) to a writer.
///
/// One event becomes exactly one `\n`-terminated line, serialized with
/// the `magic-json` compact writer, so a trace file is parseable line by
/// line with [`magic_json::from_str`]. Writes are serialized through an
/// internal mutex; I/O errors are counted, not propagated.
pub struct JsonlRecorder {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder").finish_non_exhaustive()
    }
}

impl JsonlRecorder {
    /// Creates a recorder streaming to a buffered file at `path`,
    /// creating parent directories as needed and truncating any existing
    /// file.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(Self::from_writer(Box::new(BufWriter::new(file))))
    }

    /// Creates a recorder streaming to an arbitrary writer (a socket, an
    /// in-memory buffer in tests, …).
    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlRecorder { out: Mutex::new(writer) }
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: &Event) {
        let line = event.to_jsonl_line();
        let mut out = self.out.lock().expect("unpoisoned trace writer");
        // Telemetry is best-effort: a full disk must not kill training.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("unpoisoned trace writer").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Write` handle that appends into a shared buffer, so tests can
    /// read back what a recorder wrote.
    #[derive(Clone, Default)]
    pub struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_recorder_writes_one_parseable_line_per_event() {
        let buf = SharedBuf::default();
        let recorder = JsonlRecorder::from_writer(Box::new(buf.clone()));
        let events = [
            Event::Meta { command: "test".into() },
            Event::Counter { name: "c".into(), ts_us: 1, delta: 2.0 },
            Event::SpanEnd { id: 1, stage: "s".into(), ts_us: 5, dur_us: 4 },
        ];
        for e in &events {
            recorder.record(e);
        }
        recorder.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let parsed: Vec<Event> =
            text.lines().map(|l| Event::from_jsonl_line(l).unwrap()).collect();
        assert_eq!(parsed, events);
    }

    #[test]
    fn create_makes_parent_directories() {
        let dir = std::env::temp_dir().join("magic-obs-test").join("nested");
        let path = dir.join("trace.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = JsonlRecorder::create(&path).unwrap();
        recorder.record(&Event::Meta { command: "t".into() });
        recorder.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }
}
