//! A minimal HTTP/1.1 server-side codec — just enough protocol for the
//! `magic serve` API, hand-rolled over `std::net` with no dependencies
//! (the same discipline as `magic-json`/`magic-microbench`).
//!
//! Supported: request line + headers + `Content-Length` bodies,
//! case-insensitive header lookup, and fixed-length responses. Not
//! supported (and answered with a clean error status rather than
//! undefined behavior): chunked transfer encoding and request
//! pipelining. Every response carries `Connection: close`; clients open
//! one connection per request, which on loopback costs far less than
//! the model forward it precedes.

use std::io::{BufRead, Write};

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path, e.g. `/v1/predict` (query strings are kept
    /// verbatim; the serve API defines none).
    pub path: String,
    /// Header `(name, value)` pairs in arrival order; look up through
    /// [`Request::header`] for case-insensitive access.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup, first match wins.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line.
    ConnectionClosed,
    /// The bytes on the wire are not a well-formed HTTP/1.1 request.
    /// Maps to status 400.
    Malformed(String),
    /// The declared body length exceeds the server's limit. Maps to
    /// status 413.
    BodyTooLarge {
        /// The `Content-Length` the client declared.
        declared: usize,
        /// The server's body-size limit.
        limit: usize,
    },
    /// The socket failed mid-read.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => f.write_str("connection closed"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds the {limit} byte limit")
            }
            HttpError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads one HTTP/1.1 request from a buffered stream.
///
/// `max_body` bounds the accepted `Content-Length`; larger declarations
/// fail *before* reading the body so an oversized upload cannot occupy
/// an IO thread.
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    let request_line = read_line(stream)?;
    let Some(request_line) = request_line else {
        return Err(HttpError::ConnectionClosed);
    };
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v),
        _ => return Err(HttpError::Malformed(format!("bad request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported version {version:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream)?
            .ok_or_else(|| HttpError::Malformed("connection closed inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
        if headers.len() > 100 {
            return Err(HttpError::Malformed("too many headers".into()));
        }
    }

    let mut request = Request { method, path, headers, body: Vec::new() };
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed("chunked transfer encoding is not supported".into()));
    }
    let content_length = match request.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge { declared: content_length, limit: max_body });
    }
    if content_length > 0 {
        let mut body = vec![0u8; content_length];
        stream.read_exact(&mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                HttpError::Malformed("connection closed inside body".into())
            } else {
                HttpError::Io(e)
            }
        })?;
        request.body = body;
    }
    Ok(request)
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the
/// terminator. `Ok(None)` means the peer closed before sending a byte.
fn read_line(stream: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let n = stream.read_until(b'\n', &mut raw).map_err(HttpError::Io)?;
    if n == 0 {
        return Ok(None);
    }
    while raw.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
        raw.pop();
    }
    if raw.len() > 8192 {
        return Err(HttpError::Malformed("header line over 8 KiB".into()));
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()))
}

/// The standard reason phrase for the status codes the server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` response with a JSON body.
///
/// `extra_headers` lets call sites attach semantics-bearing headers
/// (e.g. `Retry-After` on a 503 load-shed).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    write_response_typed(stream, status, "application/json", extra_headers, body)
}

/// [`write_response`] with an explicit `Content-Type` — the `/metrics`
/// endpoint answers in the Prometheus text exposition format rather
/// than JSON.
pub fn write_response_typed(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason_phrase(status),
        body.len()
    );
    for (name, value) in extra_headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_a_bodyless_get_with_bare_lf_lines() {
        let req = parse("GET /healthz HTTP/1.1\nHost: y\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, b"");
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(parse("NOT-HTTP\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse("GET /x SPDY/3\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(parse(""), Err(HttpError::ConnectionClosed)));
    }

    #[test]
    fn enforces_the_body_limit_before_reading() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 4096\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { declared: 4096, limit: 1024 }));
    }

    #[test]
    fn response_wire_format_is_parseable() {
        let mut out = Vec::new();
        write_response(&mut out, 503, &[("retry-after", "1".into())], "{\"error\":\"full\"}")
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("content-length: 16\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"full\"}"));
    }
}
