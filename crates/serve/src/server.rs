//! The serving runtime: listener, IO thread pool, and model workers
//! around the micro-batching queue.
//!
//! ```text
//! accept loop ──► mpsc<TcpStream> ──► IO threads (parse HTTP, extract
//!     ACFG, build GraphInput) ──► BoundedQueue<Job> ──► model workers
//!     (pop_batch → predict_batch_sorted on a warm tape) ──► per-job
//!     reply channel ──► the IO thread writes the HTTP response
//! ```
//!
//! Each model worker owns one long-lived [`Tape`], so after the first
//! few batches every workspace checkout is a pool hit — the serving
//! counterpart of the training-loop zero-steady-state-allocation
//! contract (asserted by the serve integration tests via `/statsz`).
//!
//! Graceful shutdown ([`ServerHandle::shutdown`] or
//! `POST /admin/shutdown`) closes the queue so new work sheds with 503,
//! lets the workers drain every queued job to a real response, unblocks
//! the accept loop with a loopback self-connect, and joins all threads.

use crate::http::{read_request, write_response, HttpError, Request};
use crate::protocol::{encode_error, encode_prediction, parse_predict_body, RequestInput};
use crate::queue::{BoundedQueue, PushError};
use crate::stats::ServeStats;
use magic::MagicPipeline;
use magic_autograd::Tape;
use magic_model::GraphInput;
use magic_obs::stage;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for one server instance. Defaults match the CLI
/// defaults documented in `docs/SERVING.md`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8787`. Port 0 picks an ephemeral
    /// port (the bound address is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// IO threads reading requests and writing responses. Also the cap
    /// on concurrently in-flight requests, and therefore on the batch
    /// sizes the queue can accumulate.
    pub io_threads: usize,
    /// Model workers, each owning one warm tape. One worker maximizes
    /// batching; more trade batch size for parallel forward passes.
    pub workers: usize,
    /// Most requests fused into one forward pass.
    pub max_batch: usize,
    /// How long a worker lingers for stragglers after the first job of
    /// a batch, in microseconds. `0` = never wait (latency-optimal,
    /// batches only form from genuine backlog).
    pub batch_window_us: u64,
    /// Bounded queue capacity; a full queue sheds with HTTP 503.
    pub queue_depth: usize,
    /// Per-request deadline. Requests still queued when it expires are
    /// answered 504 instead of occupying a batch slot.
    pub deadline_ms: u64,
    /// Largest accepted request body; larger uploads get HTTP 413.
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8787".to_string(),
            io_threads: 8,
            workers: 2,
            max_batch: 16,
            batch_window_us: 2_000,
            queue_depth: 64,
            deadline_ms: 10_000,
            max_body_bytes: 16 * 1024 * 1024,
        }
    }
}

/// What a model worker sends back for one job.
enum Reply {
    /// Per-family probabilities plus the size of the batch that carried
    /// this request.
    Probs { probs: Vec<f32>, batch_size: usize },
    /// The deadline passed before the job reached a forward pass.
    Expired,
}

/// One queued prediction. The IO thread that enqueued it blocks on the
/// other end of `reply` and owns the latency measurement.
struct Job {
    input: GraphInput,
    deadline: Instant,
    reply: mpsc::Sender<Reply>,
}

struct Shared {
    config: ServeConfig,
    pipeline: MagicPipeline,
    queue: BoundedQueue<Job>,
    stats: ServeStats,
    draining: AtomicBool,
    bound_addr: SocketAddr,
    /// Test/bench knob: sleep this long inside every batch execution,
    /// making saturation (503) and drain behavior deterministic.
    inject_execute_delay: Duration,
}

impl Shared {
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // The accept loop blocks in `accept`; a throwaway loopback
        // connection wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.bound_addr);
    }
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`] (or hit `POST /admin/shutdown` and
/// then [`ServerHandle::wait`]).
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.bound_addr
    }

    /// Requests a graceful shutdown and blocks until every in-flight
    /// request has been answered and all threads have exited.
    pub fn shutdown(self) {
        self.shared.begin_drain();
        self.join_threads();
    }

    /// Blocks until the server shuts down (normally via
    /// `POST /admin/shutdown` starting the drain).
    pub fn wait(self) {
        self.join_threads();
    }

    fn join_threads(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Binds the listener and spawns the serving threads.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn start(pipeline: MagicPipeline, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let bound_addr = listener.local_addr()?;
    let inject_execute_delay = std::env::var("MAGIC_SERVE_INJECT_EXECUTE_DELAY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::ZERO);
    let shared = Arc::new(Shared {
        queue: BoundedQueue::new(config.queue_depth),
        stats: ServeStats::new(),
        draining: AtomicBool::new(false),
        bound_addr,
        inject_execute_delay,
        config,
        pipeline,
    });

    let mut threads = Vec::new();
    let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    for worker in 0..shared.config.workers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-model-{worker}"))
                .spawn(move || model_worker_loop(&shared))?,
        );
    }
    for io in 0..shared.config.io_threads.max(1) {
        let shared = Arc::clone(&shared);
        let conn_rx = Arc::clone(&conn_rx);
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-io-{io}"))
                .spawn(move || io_loop(&shared, &conn_rx))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                // `conn_tx` moves in here; when the accept loop exits it
                // drops, which ends the IO threads after they drain.
                .spawn(move || accept_loop(&shared, &listener, conn_tx))?,
        );
    }
    Ok(ServerHandle { shared, threads })
}

fn accept_loop(shared: &Shared, listener: &TcpListener, conn_tx: mpsc::Sender<TcpStream>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            // The wake-up self-connect (or a late client) lands here;
            // drop it and stop accepting.
            return;
        }
        match stream {
            Ok(stream) => {
                if conn_tx.send(stream).is_err() {
                    return;
                }
            }
            Err(_) => continue,
        }
    }
}

fn io_loop(shared: &Shared, conn_rx: &Mutex<mpsc::Receiver<TcpStream>>) {
    loop {
        let stream = match conn_rx.lock().unwrap().recv() {
            Ok(s) => s,
            Err(_) => return, // accept loop gone: drain complete
        };
        handle_connection(shared, stream);
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _span = magic_obs::span(stage::SERVE_REQUEST);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let request = match read_request(&mut reader, shared.config.max_body_bytes) {
        Ok(request) => request,
        Err(HttpError::ConnectionClosed) | Err(HttpError::Io(_)) => return,
        Err(e @ HttpError::Malformed(_)) => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(&mut writer, 400, &[], &encode_error(&e.to_string()));
            return;
        }
        Err(e @ HttpError::BodyTooLarge { .. }) => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(&mut writer, 413, &[], &encode_error(&e.to_string()));
            return;
        }
    };

    let (status, extra, body) = route(shared, &request);
    let _ = write_response(&mut writer, status, &extra, &body);
}

type Response = (u16, Vec<(&'static str, String)>, String);

fn route(shared: &Shared, request: &Request) -> Response {
    let draining = shared.draining.load(Ordering::SeqCst);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let status = if draining { "draining" } else { "ok" };
            (200, Vec::new(), format!("{{\"status\":\"{status}\"}}"))
        }
        ("GET", "/statsz") => {
            (200, Vec::new(), shared.stats.render(shared.queue.depth(), draining))
        }
        ("POST", "/admin/shutdown") => {
            shared.begin_drain();
            (200, Vec::new(), "{\"status\":\"draining\"}".to_string())
        }
        ("POST", "/v1/predict") => handle_predict(shared, request),
        (_, "/healthz" | "/statsz" | "/admin/shutdown" | "/v1/predict") => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            (405, Vec::new(), encode_error("method not allowed"))
        }
        (_, path) => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            (404, Vec::new(), encode_error(&format!("no such endpoint: {path}")))
        }
    }
}

fn shed(shared: &Shared, why: &str) -> Response {
    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
    magic_obs::counter(stage::C_SERVE_SHED, 1.0);
    (503, vec![("retry-after", "1".to_string())], encode_error(why))
}

fn handle_predict(shared: &Shared, request: &Request) -> Response {
    let input = match parse_predict_body(&request.body) {
        Ok(input) => input,
        Err(why) => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            return (400, Vec::new(), encode_error(&why));
        }
    };
    // Extraction (parse → CFG → ACFG) runs here on the IO thread, in
    // parallel across the IO pool; only the forward pass is batched.
    let acfg = match input {
        RequestInput::Listing(listing) => match magic::extract_acfg(&listing) {
            Ok(acfg) => acfg,
            Err(e) => {
                shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                return (400, Vec::new(), encode_error(&e.to_string()));
            }
        },
        RequestInput::Acfg(acfg) => acfg,
    };
    let graph_input = GraphInput::from_acfg(&acfg);

    if shared.draining.load(Ordering::SeqCst) {
        return shed(shared, "server is draining for shutdown");
    }
    let enqueued = Instant::now();
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        input: graph_input,
        deadline: enqueued + Duration::from_millis(shared.config.deadline_ms),
        reply: reply_tx,
    };
    match shared.queue.try_push(job) {
        Ok(depth) => {
            shared.stats.requests.fetch_add(1, Ordering::Relaxed);
            magic_obs::counter(stage::C_SERVE_REQUESTS, 1.0);
            magic_obs::histogram(stage::H_SERVE_QUEUE_DEPTH, depth as f64);
        }
        Err(PushError::Full) => return shed(shared, "queue full"),
        Err(PushError::Closed) => return shed(shared, "server is draining for shutdown"),
    }
    // A worker is guaranteed to answer every popped job, and the close
    // protocol drains the queue before workers exit, so this only fails
    // if a worker thread died mid-batch.
    match reply_rx.recv() {
        Ok(Reply::Probs { probs, batch_size }) => {
            let queue_us = enqueued.elapsed().as_micros() as u64;
            shared.stats.predictions.fetch_add(1, Ordering::Relaxed);
            shared.stats.record_latency_us(queue_us);
            magic_obs::histogram(stage::H_SERVE_LATENCY_US, queue_us as f64);
            let body = encode_prediction(
                shared.pipeline.family_names(),
                &probs,
                batch_size,
                queue_us,
            );
            (200, Vec::new(), body)
        }
        Ok(Reply::Expired) => {
            shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
            (504, Vec::new(), encode_error("deadline exceeded before execution"))
        }
        Err(_) => {
            shared.stats.internal_errors.fetch_add(1, Ordering::Relaxed);
            (500, Vec::new(), encode_error("model worker lost"))
        }
    }
}

fn model_worker_loop(shared: &Shared) {
    let mut tape = Tape::new();
    let window = Duration::from_micros(shared.config.batch_window_us);
    while let Some(jobs) = shared.queue.pop_batch(shared.config.max_batch, window) {
        if jobs.is_empty() {
            continue;
        }
        let now = Instant::now();
        let (live, expired): (Vec<Job>, Vec<Job>) =
            jobs.into_iter().partition(|j| j.deadline > now);
        for job in expired {
            let _ = job.reply.send(Reply::Expired);
        }
        if live.is_empty() {
            continue;
        }
        if !shared.inject_execute_delay.is_zero() {
            std::thread::sleep(shared.inject_execute_delay);
        }
        let inputs: Vec<&GraphInput> = live.iter().map(|j| &j.input).collect();
        let vertices: usize = inputs.iter().map(|i| i.vertex_count()).sum();
        let before = tape.workspace_stats();
        let probs = {
            let _span = magic_obs::span_fields(
                stage::SERVE_BATCH_EXECUTE,
                &[("batch", live.len() as f64), ("vertices", vertices as f64)],
            );
            shared.pipeline.model().predict_batch_sorted(&mut tape, &inputs)
        };
        let after = tape.workspace_stats();
        shared.stats.pool_hits.fetch_add(after.hits - before.hits, Ordering::Relaxed);
        shared.stats.pool_misses.fetch_add(after.misses - before.misses, Ordering::Relaxed);
        shared.stats.record_batch(live.len());
        magic_obs::histogram(stage::H_SERVE_BATCH_SIZE, live.len() as f64);
        let batch_size = live.len();
        for (job, probs) in live.into_iter().zip(probs) {
            let _ = job.reply.send(Reply::Probs { probs, batch_size });
        }
    }
}
