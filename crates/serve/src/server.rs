//! The serving runtime: listener, IO thread pool, and model workers
//! around the micro-batching queue.
//!
//! ```text
//! accept loop ──► mpsc<TcpStream> ──► IO threads (parse HTTP, extract
//!     ACFG, build GraphInput) ──► BoundedQueue<Job> ──► model workers
//!     (pop_batch → predict_batch_sorted on a warm tape) ──► per-job
//!     reply channel ──► the IO thread writes the HTTP response
//! ```
//!
//! Each model worker owns one long-lived [`Tape`], so after the first
//! few batches every workspace checkout is a pool hit — the serving
//! counterpart of the training-loop zero-steady-state-allocation
//! contract (asserted by the serve integration tests via `/statsz`).
//!
//! Every request is assigned a process-unique id and stamped through
//! its lifecycle stages (`parse → extract → queue → execute → write`);
//! the stamps feed the windowed stage histograms behind `/statsz` and
//! `GET /metrics`, the slow-request exemplar ring behind
//! `GET /debug/slow`, and — when `--access-log` is set — one
//! [`Event::ServeAccess`](magic_obs::Event) JSONL line per request.
//! Telemetry is observational only: it takes no locks on the model
//! path and never changes what the model computes, so predictions are
//! bitwise identical with it on or off.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`] or
//! `POST /admin/shutdown`) closes the queue so new work sheds with 503,
//! lets the workers drain every queued job to a real response, unblocks
//! the accept loop with a loopback self-connect, and joins all threads.
//! While draining, `GET /healthz` answers 503 `{"status":"draining"}`
//! so load balancers stop routing to the instance.

use crate::http::{read_request, write_response_typed, HttpError, Request};
use crate::metrics::{render_metrics, METRICS_CONTENT_TYPE};
use crate::protocol::{encode_error, encode_prediction, parse_predict_request, RequestInput};
use crate::queue::{BoundedQueue, PushError};
use crate::stats::{LifecycleStage, ServeStats, SlowExemplar};
use magic::MagicPipeline;
use magic_autograd::Tape;
use magic_model::GraphInput;
use magic_obs::timeseries::MonotonicClock;
use magic_obs::{stage, Event, JsonlRecorder, Recorder};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for one server instance. Defaults match the CLI
/// defaults documented in `docs/SERVING.md`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8787`. Port 0 picks an ephemeral
    /// port (the bound address is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// IO threads reading requests and writing responses. Also the cap
    /// on concurrently in-flight requests, and therefore on the batch
    /// sizes the queue can accumulate.
    pub io_threads: usize,
    /// Model workers, each owning one warm tape. One worker maximizes
    /// batching; more trade batch size for parallel forward passes.
    pub workers: usize,
    /// Most requests fused into one forward pass.
    pub max_batch: usize,
    /// How long a worker lingers for stragglers after the first job of
    /// a batch, in microseconds. `0` = never wait (latency-optimal,
    /// batches only form from genuine backlog).
    pub batch_window_us: u64,
    /// Bounded queue capacity; a full queue sheds with HTTP 503.
    pub queue_depth: usize,
    /// Per-request deadline. Requests still queued when it expires are
    /// answered 504 instead of occupying a batch slot.
    pub deadline_ms: u64,
    /// Largest accepted request body; larger uploads get HTTP 413.
    pub max_body_bytes: usize,
    /// Path to append the JSONL access log to (`--access-log`). `None`
    /// disables access logging.
    pub access_log: Option<String>,
    /// Span of the sliding telemetry window behind `/metrics` and the
    /// `/statsz` quantiles, in seconds (`--metrics-window`).
    pub metrics_window_s: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8787".to_string(),
            io_threads: 8,
            workers: 2,
            max_batch: 16,
            batch_window_us: 2_000,
            queue_depth: 64,
            deadline_ms: 10_000,
            max_body_bytes: 16 * 1024 * 1024,
            access_log: None,
            metrics_window_s: 60,
        }
    }
}

/// What a model worker sends back for one job.
enum Reply {
    /// A served prediction plus its worker-side stage timings.
    Probs {
        /// Per-family probabilities for this job's graph.
        probs: Vec<f32>,
        /// Number of requests fused into the carrying batch.
        batch_size: usize,
        /// Time this job waited in the queue before its batch popped, µs.
        queue_wait_us: u64,
        /// Wall-clock of the batch forward pass, µs (shared by every
        /// job in the batch).
        execute_us: u64,
    },
    /// The deadline passed before the job reached a forward pass.
    Expired,
}

/// One queued prediction. The IO thread that enqueued it blocks on the
/// other end of `reply` and owns the latency measurement.
struct Job {
    input: GraphInput,
    enqueued: Instant,
    deadline: Instant,
    reply: mpsc::Sender<Reply>,
}

/// Per-request lifecycle stamps, carried from `read_request` through
/// response write and then flushed into the windowed stage histograms,
/// the slow-exemplar ring, and the access log.
struct RequestTrace {
    id: u64,
    path: String,
    bytes_in: u64,
    parse_us: u64,
    extract_us: u64,
    queue_us: u64,
    execute_us: u64,
    batch: u64,
    family: Option<String>,
}

struct Shared {
    config: ServeConfig,
    pipeline: MagicPipeline,
    queue: BoundedQueue<Job>,
    stats: ServeStats,
    draining: AtomicBool,
    bound_addr: SocketAddr,
    access_log: Option<JsonlRecorder>,
    /// Test/bench knob: sleep this long inside every batch execution,
    /// making saturation (503) and drain behavior deterministic.
    inject_execute_delay: Duration,
}

impl Shared {
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // The accept loop blocks in `accept`; a throwaway loopback
        // connection wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.bound_addr);
    }
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`] (or hit `POST /admin/shutdown` and
/// then [`ServerHandle::wait`]).
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.bound_addr
    }

    /// Requests a graceful shutdown and blocks until every in-flight
    /// request has been answered and all threads have exited.
    pub fn shutdown(self) {
        self.shared.begin_drain();
        self.join_threads();
    }

    /// Blocks until the server shuts down (normally via
    /// `POST /admin/shutdown` starting the drain).
    pub fn wait(self) {
        self.join_threads();
    }

    fn join_threads(self) {
        for t in self.threads {
            let _ = t.join();
        }
        if let Some(log) = &self.shared.access_log {
            log.flush();
        }
    }
}

/// Binds the listener and spawns the serving threads.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable, or the open
/// error if the configured access log cannot be created.
pub fn start(pipeline: MagicPipeline, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let bound_addr = listener.local_addr()?;
    let inject_execute_delay = std::env::var("MAGIC_SERVE_INJECT_EXECUTE_DELAY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::ZERO);
    let access_log = match &config.access_log {
        Some(path) => {
            let recorder = JsonlRecorder::create(path)?;
            recorder.record(&Event::Meta { command: "magic serve".to_string() });
            Some(recorder)
        }
        None => None,
    };
    let shared = Arc::new(Shared {
        queue: BoundedQueue::new(config.queue_depth),
        stats: ServeStats::with_window(config.metrics_window_s, Arc::new(MonotonicClock::new())),
        draining: AtomicBool::new(false),
        bound_addr,
        access_log,
        inject_execute_delay,
        config,
        pipeline,
    });

    let mut threads = Vec::new();
    let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    for worker in 0..shared.config.workers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-model-{worker}"))
                .spawn(move || model_worker_loop(&shared))?,
        );
    }
    for io in 0..shared.config.io_threads.max(1) {
        let shared = Arc::clone(&shared);
        let conn_rx = Arc::clone(&conn_rx);
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-io-{io}"))
                .spawn(move || io_loop(&shared, &conn_rx))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                // `conn_tx` moves in here; when the accept loop exits it
                // drops, which ends the IO threads after they drain.
                .spawn(move || accept_loop(&shared, &listener, conn_tx))?,
        );
    }
    Ok(ServerHandle { shared, threads })
}

fn accept_loop(shared: &Shared, listener: &TcpListener, conn_tx: mpsc::Sender<TcpStream>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            // The wake-up self-connect (or a late client) lands here;
            // drop it and stop accepting.
            return;
        }
        match stream {
            Ok(stream) => {
                if conn_tx.send(stream).is_err() {
                    return;
                }
            }
            Err(_) => continue,
        }
    }
}

fn io_loop(shared: &Shared, conn_rx: &Mutex<mpsc::Receiver<TcpStream>>) {
    loop {
        let stream = match conn_rx.lock().unwrap().recv() {
            Ok(s) => s,
            Err(_) => return, // accept loop gone: drain complete
        };
        handle_connection(shared, stream);
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _span = magic_obs::span(stage::SERVE_REQUEST);
    let accepted = Instant::now();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut trace = RequestTrace {
        id: shared.stats.next_request_id(),
        path: "-".to_string(),
        bytes_in: 0,
        parse_us: 0,
        extract_us: 0,
        queue_us: 0,
        execute_us: 0,
        batch: 0,
        family: None,
    };
    let result = read_request(&mut reader, shared.config.max_body_bytes);
    trace.parse_us = accepted.elapsed().as_micros() as u64;
    let (status, content_type, extra, body) = match result {
        Ok(request) => {
            trace.path = request.path.clone();
            trace.bytes_in = request.body.len() as u64;
            let content_type = if request.method == "GET" && request.path == "/metrics" {
                METRICS_CONTENT_TYPE
            } else {
                "application/json"
            };
            let (status, extra, body) = route(shared, &request, &mut trace);
            (status, content_type, extra, body)
        }
        Err(HttpError::ConnectionClosed) | Err(HttpError::Io(_)) => return,
        Err(e @ HttpError::Malformed(_)) => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            (400, "application/json", Vec::new(), encode_error(&e.to_string()))
        }
        Err(e @ HttpError::BodyTooLarge { .. }) => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            (413, "application/json", Vec::new(), encode_error(&e.to_string()))
        }
    };
    let write_start = Instant::now();
    let _ = write_response_typed(&mut writer, status, content_type, &extra, &body);
    let write_us = write_start.elapsed().as_micros() as u64;
    let total_us = accepted.elapsed().as_micros() as u64;
    finish_request(shared, trace, status, write_us, total_us, body.len() as u64);
}

/// Flushes one finished request into the windowed telemetry, the
/// slow-exemplar ring, and the access log.
fn finish_request(
    shared: &Shared,
    trace: RequestTrace,
    status: u16,
    write_us: u64,
    total_us: u64,
    bytes_out: u64,
) {
    let is_predict = trace.path == "/v1/predict";
    if is_predict && status == 200 {
        // End-to-end latency + stage breakdown feed the windowed
        // quantiles; only successful predictions count, so tail shifts
        // are model-path signal rather than error-path noise.
        shared.stats.record_latency_us(total_us);
        magic_obs::histogram(stage::H_SERVE_LATENCY_US, total_us as f64);
        let stages = [
            (LifecycleStage::Parse, stage::H_SERVE_PARSE_US, trace.parse_us),
            (LifecycleStage::Extract, stage::H_SERVE_EXTRACT_US, trace.extract_us),
            (LifecycleStage::QueueWait, stage::H_SERVE_QUEUE_WAIT_US, trace.queue_us),
            (LifecycleStage::Execute, stage::H_SERVE_EXECUTE_US, trace.execute_us),
            (LifecycleStage::Write, stage::H_SERVE_WRITE_US, write_us),
        ];
        for (lifecycle, name, us) in stages {
            shared.stats.record_stage_us(lifecycle, us);
            magic_obs::histogram(name, us as f64);
        }
    }
    if is_predict {
        // 504s and 500s are slow-by-definition and belong in the
        // exemplar ring alongside slow 200s.
        shared.stats.offer_slow(SlowExemplar {
            id: trace.id,
            ts_us: shared.stats.now_us(),
            status,
            batch: trace.batch,
            stages_us: [
                trace.parse_us,
                trace.extract_us,
                trace.queue_us,
                trace.execute_us,
                write_us,
            ],
            total_us,
            family: trace.family.clone(),
        });
    }
    if let Some(log) = &shared.access_log {
        log.record(&Event::ServeAccess {
            id: trace.id,
            ts_us: shared.stats.now_us(),
            status,
            path: trace.path,
            batch: trace.batch,
            bytes_in: trace.bytes_in,
            bytes_out,
            parse_us: trace.parse_us,
            extract_us: trace.extract_us,
            queue_us: trace.queue_us,
            execute_us: trace.execute_us,
            write_us,
            total_us,
            family: trace.family,
        });
    }
}

type Response = (u16, Vec<(&'static str, String)>, String);

fn route(shared: &Shared, request: &Request, trace: &mut RequestTrace) -> Response {
    let draining = shared.draining.load(Ordering::SeqCst);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            // 503 while draining so load balancers take the instance
            // out of rotation during the shutdown grace period.
            if draining {
                (503, Vec::new(), "{\"status\":\"draining\"}".to_string())
            } else {
                (200, Vec::new(), "{\"status\":\"ok\"}".to_string())
            }
        }
        ("GET", "/statsz") => {
            let body = shared.stats.render(
                shared.queue.depth(),
                shared.queue.high_water() as u64,
                draining,
            );
            (200, Vec::new(), body)
        }
        ("GET", "/metrics") => {
            let body = render_metrics(
                &shared.stats,
                shared.queue.depth(),
                shared.queue.high_water() as u64,
                draining,
            );
            (200, Vec::new(), body)
        }
        ("GET", "/debug/slow") => (200, Vec::new(), shared.stats.render_slow()),
        ("POST", "/admin/shutdown") => {
            shared.begin_drain();
            (200, Vec::new(), "{\"status\":\"draining\"}".to_string())
        }
        ("POST", "/v1/predict") => handle_predict(shared, request, trace),
        (_, "/healthz" | "/statsz" | "/metrics" | "/debug/slow" | "/admin/shutdown"
        | "/v1/predict") => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            (405, Vec::new(), encode_error("method not allowed"))
        }
        (_, path) => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            (404, Vec::new(), encode_error(&format!("no such endpoint: {path}")))
        }
    }
}

fn shed(shared: &Shared, why: &str) -> Response {
    shared.stats.record_shed();
    magic_obs::counter(stage::C_SERVE_SHED, 1.0);
    (503, vec![("retry-after", "1".to_string())], encode_error(why))
}

fn handle_predict(shared: &Shared, request: &Request, trace: &mut RequestTrace) -> Response {
    let input = match parse_predict_request(request.header("content-type"), &request.body) {
        Ok(input) => input,
        Err(why) => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            return (400, Vec::new(), encode_error(&why));
        }
    };
    // Extraction (parse → CFG → ACFG) runs here on the IO thread, in
    // parallel across the IO pool; only the forward pass is batched.
    let extract_start = Instant::now();
    let acfg = match input {
        RequestInput::Listing(listing) => match magic::extract_acfg(&listing) {
            Ok(acfg) => acfg,
            Err(e) => {
                shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                return (400, Vec::new(), encode_error(&e.to_string()));
            }
        },
        RequestInput::Acfg(acfg) => acfg,
    };
    // `input_for` applies the pipeline's graph-reduction strategy, so a
    // served model sees exactly the graphs it was trained on — whether
    // the client sent a raw listing or a pre-extracted (even
    // pre-reduced: the strategies are idempotent) ACFG.
    let graph_input = shared.pipeline.input_for(&acfg);
    trace.extract_us = extract_start.elapsed().as_micros() as u64;

    if shared.draining.load(Ordering::SeqCst) {
        return shed(shared, "server is draining for shutdown");
    }
    let enqueued = Instant::now();
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        input: graph_input,
        enqueued,
        deadline: enqueued + Duration::from_millis(shared.config.deadline_ms),
        reply: reply_tx,
    };
    match shared.queue.try_push(job) {
        Ok(depth) => {
            shared.stats.record_request();
            magic_obs::counter(stage::C_SERVE_REQUESTS, 1.0);
            magic_obs::histogram(stage::H_SERVE_QUEUE_DEPTH, depth as f64);
        }
        Err(PushError::Full) => return shed(shared, "queue full"),
        Err(PushError::Closed) => return shed(shared, "server is draining for shutdown"),
    }
    // A worker is guaranteed to answer every popped job, and the close
    // protocol drains the queue before workers exit, so this only fails
    // if a worker thread died mid-batch.
    match reply_rx.recv() {
        Ok(Reply::Probs { probs, batch_size, queue_wait_us, execute_us }) => {
            let queue_us = enqueued.elapsed().as_micros() as u64;
            shared.stats.predictions.fetch_add(1, Ordering::Relaxed);
            trace.queue_us = queue_wait_us;
            trace.execute_us = execute_us;
            trace.batch = batch_size as u64;
            let body = encode_prediction(
                shared.pipeline.family_names(),
                &probs,
                batch_size,
                queue_us,
                trace.id,
            );
            trace.family = {
                let names = shared.pipeline.family_names();
                probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| names[i].clone())
            };
            (200, Vec::new(), body)
        }
        Ok(Reply::Expired) => {
            shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
            (504, Vec::new(), encode_error("deadline exceeded before execution"))
        }
        Err(_) => {
            shared.stats.internal_errors.fetch_add(1, Ordering::Relaxed);
            (500, Vec::new(), encode_error("model worker lost"))
        }
    }
}

fn model_worker_loop(shared: &Shared) {
    let mut tape = Tape::new();
    let window = Duration::from_micros(shared.config.batch_window_us);
    while let Some(jobs) = shared.queue.pop_batch(shared.config.max_batch, window) {
        if jobs.is_empty() {
            continue;
        }
        let now = Instant::now();
        let (live, expired): (Vec<Job>, Vec<Job>) =
            jobs.into_iter().partition(|j| j.deadline > now);
        for job in expired {
            let _ = job.reply.send(Reply::Expired);
        }
        if live.is_empty() {
            continue;
        }
        let execute_start = Instant::now();
        if !shared.inject_execute_delay.is_zero() {
            std::thread::sleep(shared.inject_execute_delay);
        }
        let inputs: Vec<&GraphInput> = live.iter().map(|j| &j.input).collect();
        let vertices: usize = inputs.iter().map(|i| i.vertex_count()).sum();
        let before = tape.workspace_stats();
        let probs = {
            let _span = magic_obs::span_fields(
                stage::SERVE_BATCH_EXECUTE,
                &[("batch", live.len() as f64), ("vertices", vertices as f64)],
            );
            shared.pipeline.model().predict_batch_sorted(&mut tape, &inputs)
        };
        let execute_us = execute_start.elapsed().as_micros() as u64;
        let after = tape.workspace_stats();
        shared.stats.pool_hits.fetch_add(after.hits - before.hits, Ordering::Relaxed);
        shared.stats.pool_misses.fetch_add(after.misses - before.misses, Ordering::Relaxed);
        shared.stats.record_batch(live.len());
        magic_obs::histogram(stage::H_SERVE_BATCH_SIZE, live.len() as f64);
        let batch_size = live.len();
        for (job, probs) in live.into_iter().zip(probs) {
            let queue_wait_us = now.saturating_duration_since(job.enqueued).as_micros() as u64;
            let _ = job.reply.send(Reply::Probs {
                probs,
                batch_size,
                queue_wait_us,
                execute_us,
            });
        }
    }
}
