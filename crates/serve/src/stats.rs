//! Serving counters and windowed telemetry behind `/statsz`,
//! `/metrics`, and `/debug/slow`.
//!
//! Two kinds of state live here, both updated lock-free on the hot
//! path:
//!
//! * **Cumulative-since-start counters** (requests, predictions, shed,
//!   …): relaxed atomics, rendered as a racy-but-consistent-enough
//!   snapshot. These answer "how much, ever" and survive in `/statsz`
//!   unchanged for continuity.
//! * **Windowed series** ([`magic_obs::timeseries`]): sliding-window
//!   rates (req/s, shed/s, batches/s) and log-linear latency histograms
//!   per lifecycle stage, answering "how much, *now*". Quantiles are
//!   interpolated inside the winning bucket — exact to within one
//!   bucket (≤ 12.5% relative error), far tighter than the power-of-two
//!   upper bounds `/statsz` reported before `statsz_version` 2.
//!
//! Time comes from an injectable [`Clock`] so windowed behavior is
//! deterministic under test; production uses a [`MonotonicClock`]
//! anchored at server start.
//!
//! The slowest requests are retained as exemplars in a bounded top-K
//! ring ([`SlowExemplar`]) and served at `GET /debug/slow`, so "what
//! was slow in the last minute" has concrete request ids and stage
//! breakdowns attached, not just a percentile.

use magic_json::{json, Value};
use magic_obs::timeseries::{Clock, MonotonicClock, WindowedCounter, WindowedHistogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Version stamp of the `/statsz` document layout. Bumped to 2 when
/// the windowed interpolated quantiles replaced the log₂ upper bounds
/// and `uptime_s`/`rates`/`stages_us` were added.
pub const STATSZ_VERSION: u64 = 2;

/// Slots retained in the slow-request exemplar ring.
const SLOW_CAPACITY: usize = 16;

/// The five traced lifecycle stages of one predict request, in
/// pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleStage {
    /// Reading + decoding the HTTP request and body.
    Parse,
    /// ACFG extraction (listing parse → CFG → attributes).
    Extract,
    /// Waiting in the batching queue for a model worker.
    QueueWait,
    /// Inside the fused batched forward pass.
    Execute,
    /// Writing the response bytes.
    Write,
}

impl LifecycleStage {
    /// All stages in pipeline order.
    pub const ALL: [LifecycleStage; 5] = [
        LifecycleStage::Parse,
        LifecycleStage::Extract,
        LifecycleStage::QueueWait,
        LifecycleStage::Execute,
        LifecycleStage::Write,
    ];

    /// Stable short name used in `/statsz`, `/metrics` labels, and the
    /// access-log schema docs.
    pub fn name(self) -> &'static str {
        match self {
            LifecycleStage::Parse => "parse",
            LifecycleStage::Extract => "extract",
            LifecycleStage::QueueWait => "queue",
            LifecycleStage::Execute => "execute",
            LifecycleStage::Write => "write",
        }
    }
}

/// One retained slow-request exemplar: the stage breakdown of a
/// high-latency request, kept so tail percentiles have an explainable
/// witness.
#[derive(Debug, Clone)]
pub struct SlowExemplar {
    /// Request id (correlates with the access log and the predict
    /// response body).
    pub id: u64,
    /// Clock timestamp when the response write completed, µs.
    pub ts_us: u64,
    /// HTTP status answered.
    pub status: u16,
    /// Batch size that carried the forward pass.
    pub batch: u64,
    /// Stage durations, µs, in [`LifecycleStage::ALL`] order.
    pub stages_us: [u64; 5],
    /// End-to-end accept → response-written duration, µs.
    pub total_us: u64,
    /// Predicted family for 200 responses.
    pub family: Option<String>,
}

/// Shared serving counters + windowed telemetry; one instance per
/// server, `Arc`-shared across IO threads, model workers, and the
/// stats endpoints.
pub struct ServeStats {
    /// Predict requests accepted into the queue.
    pub requests: AtomicU64,
    /// Predict responses answered 200.
    pub predictions: AtomicU64,
    /// Requests shed with 503 (queue full or draining).
    pub shed: AtomicU64,
    /// Requests expired with 504 (deadline passed before execution).
    pub timeouts: AtomicU64,
    /// Requests refused with a 4xx (bad body, bad route, oversized).
    pub client_errors: AtomicU64,
    /// Requests failed with 500 (e.g. worker reply channel lost).
    pub internal_errors: AtomicU64,
    /// Micro-batches executed.
    pub batches: AtomicU64,
    /// Requests summed over executed batches (`batched_requests /
    /// batches` is the effective batching factor).
    pub batched_requests: AtomicU64,
    /// Largest batch executed so far.
    pub max_batch: AtomicU64,
    /// Workspace-pool hits accumulated from worker tapes (per-batch
    /// deltas of `Tape::workspace_stats`).
    pub pool_hits: AtomicU64,
    /// Workspace-pool misses accumulated from worker tapes. Flat after
    /// warm-up for a steady workload — the zero-steady-state-alloc
    /// contract, asserted by the serve integration tests.
    pub pool_misses: AtomicU64,
    latency_count: AtomicU64,
    latency_sum_us: AtomicU64,
    next_request_id: AtomicU64,
    clock: Arc<dyn Clock>,
    started_us: u64,
    requests_window: WindowedCounter,
    shed_window: WindowedCounter,
    batches_window: WindowedCounter,
    latency_window: WindowedHistogram,
    stage_windows: [WindowedHistogram; 5],
    slow: Mutex<Vec<SlowExemplar>>,
}

impl Default for ServeStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeStats {
    /// Creates a zeroed stats block with the default 60 s window and a
    /// monotonic clock anchored "now".
    pub fn new() -> Self {
        Self::with_window(60, Arc::new(MonotonicClock::new()))
    }

    /// Creates a stats block whose sliding windows span `window_s`
    /// seconds (1 s slots, clamped to at least 1) reading time from
    /// `clock` — inject a
    /// [`ManualClock`](magic_obs::timeseries::ManualClock) for
    /// deterministic tests.
    pub fn with_window(window_s: u64, clock: Arc<dyn Clock>) -> Self {
        let slots = window_s.max(1) as usize;
        const SLOT_US: u64 = 1_000_000;
        let started_us = clock.now_us();
        ServeStats {
            requests: AtomicU64::new(0),
            predictions: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            internal_errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            pool_hits: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
            latency_count: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
            next_request_id: AtomicU64::new(1),
            started_us,
            requests_window: WindowedCounter::new(slots, SLOT_US),
            shed_window: WindowedCounter::new(slots, SLOT_US),
            batches_window: WindowedCounter::new(slots, SLOT_US),
            latency_window: WindowedHistogram::new(slots, SLOT_US),
            stage_windows: std::array::from_fn(|_| WindowedHistogram::new(slots, SLOT_US)),
            slow: Mutex::new(Vec::with_capacity(SLOW_CAPACITY)),
            clock,
        }
    }

    /// Current clock reading, µs since the clock origin. Also the
    /// timestamp written into access-log events.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Seconds this stats block (≈ the server) has been alive.
    pub fn uptime_s(&self) -> u64 {
        (self.now_us().saturating_sub(self.started_us)) / 1_000_000
    }

    /// The sliding-window span, in seconds.
    pub fn window_s(&self) -> u64 {
        self.requests_window.window_us() / 1_000_000
    }

    /// Allocates the next process-unique request id.
    pub fn next_request_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Records one accepted predict request (cumulative + windowed).
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.requests_window.add(self.now_us(), 1);
    }

    /// Records one shed request (cumulative + windowed).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.shed_window.add(self.now_us(), 1);
    }

    /// Records one end-to-end request latency (accept → response
    /// written) for a 200 predict response: cumulative count/sum plus
    /// the windowed histogram backing the interpolated quantiles.
    pub fn record_latency_us(&self, us: u64) {
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_window.record(self.now_us(), us);
    }

    /// Records one lifecycle-stage duration into its windowed series.
    pub fn record_stage_us(&self, stage: LifecycleStage, us: u64) {
        self.stage_windows[stage as usize].record(self.now_us(), us);
    }

    /// Records an executed batch of `size` requests (cumulative +
    /// windowed batch rate).
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
        self.batches_window.add(self.now_us(), 1);
    }

    /// Offers a finished request to the slow-exemplar ring: kept if the
    /// ring has room or the request is slower than the current fastest
    /// retained exemplar (top-K by `total_us`, K = 16).
    pub fn offer_slow(&self, exemplar: SlowExemplar) {
        let mut slow = self.slow.lock().unwrap();
        if slow.len() < SLOW_CAPACITY {
            slow.push(exemplar);
            return;
        }
        let (min_idx, min) = match slow
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.total_us)
        {
            Some((i, e)) => (i, e.total_us),
            None => return,
        };
        if exemplar.total_us > min {
            slow[min_idx] = exemplar;
        }
    }

    /// Windowed interpolated quantile of end-to-end 200-predict
    /// latency, µs. Returns 0 with no observations in the window.
    pub fn latency_quantile_us(&self, q: f64) -> f64 {
        self.latency_window.snapshot(self.now_us()).quantile(q)
    }

    /// Sliding-window rates per second: `(requests, shed, batches)`.
    pub fn window_rates(&self) -> (f64, f64, f64) {
        let now = self.now_us();
        (
            self.requests_window.rate_per_sec(now),
            self.shed_window.rate_per_sec(now),
            self.batches_window.rate_per_sec(now),
        )
    }

    /// Windowed snapshot of one stage's latency histogram.
    pub fn stage_snapshot(
        &self,
        stage: LifecycleStage,
    ) -> magic_obs::timeseries::WindowSnapshot {
        self.stage_windows[stage as usize].snapshot(self.now_us())
    }

    /// Windowed snapshot of the end-to-end latency histogram.
    pub fn latency_snapshot(&self) -> magic_obs::timeseries::WindowSnapshot {
        self.latency_window.snapshot(self.now_us())
    }

    /// Cumulative 200-predict latency count and sum (µs).
    pub fn latency_totals(&self) -> (u64, u64) {
        (
            self.latency_count.load(Ordering::Relaxed),
            self.latency_sum_us.load(Ordering::Relaxed),
        )
    }

    /// Renders the `/statsz` JSON document. `queue_depth`,
    /// `queue_high_water`, and `draining` are sampled by the caller at
    /// render time.
    ///
    /// Layout (`statsz_version` 2): cumulative counters and
    /// `latency_us.count`/`mean` keep their v1 meaning; `p50`/`p90`/
    /// `p99` are *windowed* interpolated quantiles over the last
    /// `window_s` seconds, and `rates`/`stages_us` are new windowed
    /// sections.
    pub fn render(&self, queue_depth: usize, queue_high_water: u64, draining: bool) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let batches = load(&self.batches);
        let fused = load(&self.batched_requests);
        let mean_batch =
            if batches == 0 { 0.0 } else { fused as f64 / batches as f64 };
        let count = load(&self.latency_count);
        let mean_latency =
            if count == 0 { 0.0 } else { load(&self.latency_sum_us) as f64 / count as f64 };
        let latency = self.latency_snapshot();
        let (req_rate, shed_rate, batch_rate) = self.window_rates();
        let mut stages = magic_json::Map::new();
        for stage in LifecycleStage::ALL {
            let snap = self.stage_snapshot(stage);
            stages.insert(
                stage.name(),
                json!({
                    "count": snap.count(),
                    "p50": snap.quantile(0.50),
                    "p99": snap.quantile(0.99),
                }),
            );
        }
        let body = json!({
            "statsz_version": STATSZ_VERSION,
            "uptime_s": self.uptime_s(),
            "requests": load(&self.requests),
            "predictions": load(&self.predictions),
            "shed": load(&self.shed),
            "timeouts": load(&self.timeouts),
            "client_errors": load(&self.client_errors),
            "internal_errors": load(&self.internal_errors),
            "queue_depth": queue_depth as u64,
            "queue_high_water": queue_high_water,
            "draining": draining,
            "batches": load(&self.batches),
            "mean_batch_size": mean_batch,
            "max_batch_size": load(&self.max_batch),
            "pool_hits": load(&self.pool_hits),
            "pool_misses": load(&self.pool_misses),
            "window_s": self.window_s(),
            "rates": {
                "req_per_s": req_rate,
                "shed_per_s": shed_rate,
                "batches_per_s": batch_rate,
            },
            "latency_us": {
                "count": count,
                "mean": mean_latency,
                "p50": latency.quantile(0.50),
                "p90": latency.quantile(0.90),
                "p99": latency.quantile(0.99),
            },
            "stages_us": Value::Object(stages),
        });
        magic_json::to_string(&body)
    }

    /// Renders the `GET /debug/slow` JSON document: retained slow
    /// exemplars, slowest first.
    pub fn render_slow(&self) -> String {
        let mut slow = self.slow.lock().unwrap().clone();
        slow.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.id.cmp(&b.id)));
        let rows: Vec<Value> = slow
            .iter()
            .map(|e| {
                let mut stages = magic_json::Map::new();
                for (stage, &us) in LifecycleStage::ALL.iter().zip(e.stages_us.iter()) {
                    stages.insert(stage.name(), Value::Number(us as f64));
                }
                json!({
                    "id": e.id,
                    "ts_us": e.ts_us,
                    "status": e.status as u64,
                    "batch": e.batch,
                    "total_us": e.total_us,
                    "stages_us": Value::Object(stages),
                    "family": match &e.family {
                        Some(f) => Value::String(f.clone()),
                        None => Value::Null,
                    },
                })
            })
            .collect();
        magic_json::to_string(&json!({ "slow": Value::Array(rows) }))
    }
}

/// Parses a rendered `/statsz` body back into a JSON value — the
/// client-side half used by tests and the load generator.
pub fn parse_statsz(body: &str) -> Result<Value, String> {
    magic_json::from_str(body).map_err(|e| format!("bad statsz body: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_obs::timeseries::{bucket_bounds, bucket_index, ManualClock};

    fn manual_stats() -> (ServeStats, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (ServeStats::with_window(60, Arc::clone(&clock) as Arc<dyn Clock>), clock)
    }

    #[test]
    fn windowed_quantiles_interpolate_within_one_bucket() {
        let (stats, _clock) = manual_stats();
        for i in 1..=99u64 {
            stats.record_latency_us(i * 100); // 100 .. 9_900 µs
        }
        stats.record_latency_us(50_000);
        // Exact p50 = 5_000, p99 = 9_900; estimates must land in the
        // log-linear bucket holding the exact value.
        for (q, exact) in [(0.50, 5_000u64), (0.99, 9_900u64)] {
            let est = stats.latency_quantile_us(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            assert!(
                est >= lo as f64 && est < hi as f64,
                "q={q}: {est} outside [{lo}, {hi}) around {exact}"
            );
        }
    }

    #[test]
    fn quantiles_are_windowed_but_count_is_cumulative() {
        let (stats, clock) = manual_stats();
        stats.record_latency_us(8_000);
        clock.advance_us(120_000_000); // 2 minutes: outside the window
        stats.record_latency_us(100);
        let v = parse_statsz(&stats.render(0, 0, false)).unwrap();
        assert_eq!(v["latency_us"]["count"].as_u64(), Some(2), "cumulative count");
        // The 8 ms observation has aged out; windowed p99 tracks only
        // the recent 100 µs one.
        let p99 = v["latency_us"]["p99"].as_f64().unwrap();
        assert!(p99 < 150.0, "p99 {p99} should reflect only the in-window sample");
        assert_eq!(v["uptime_s"].as_u64(), Some(120));
    }

    #[test]
    fn statsz_document_carries_version_uptime_and_rates() {
        let (stats, clock) = manual_stats();
        for _ in 0..120 {
            stats.record_request();
        }
        clock.advance_us(30_000_000);
        let v = parse_statsz(&stats.render(3, 7, false)).unwrap();
        assert_eq!(v["statsz_version"].as_u64(), Some(STATSZ_VERSION));
        assert_eq!(v["uptime_s"].as_u64(), Some(30));
        assert_eq!(v["window_s"].as_u64(), Some(60));
        assert_eq!(v["queue_depth"].as_u64(), Some(3));
        assert_eq!(v["queue_high_water"].as_u64(), Some(7));
        // 120 requests over a 60 s window = 2/s.
        assert_eq!(v["rates"]["req_per_s"].as_f64(), Some(2.0));
    }

    #[test]
    fn empty_stats_render_zeroes() {
        let stats = ServeStats::new();
        let v = parse_statsz(&stats.render(0, 0, false)).unwrap();
        assert_eq!(v["requests"].as_u64(), Some(0));
        assert_eq!(v["latency_us"]["p99"].as_f64(), Some(0.0));
        assert_eq!(v["draining"].as_bool(), Some(false));
        assert_eq!(v["stages_us"]["queue"]["count"].as_u64(), Some(0));
    }

    #[test]
    fn batch_accounting_tracks_mean_and_max() {
        let stats = ServeStats::new();
        stats.record_batch(1);
        stats.record_batch(3);
        stats.record_batch(8);
        let v = parse_statsz(&stats.render(2, 2, true)).unwrap();
        assert_eq!(v["batches"].as_u64(), Some(3));
        assert_eq!(v["mean_batch_size"].as_f64(), Some(4.0));
        assert_eq!(v["max_batch_size"].as_u64(), Some(8));
        assert_eq!(v["queue_depth"].as_u64(), Some(2));
        assert_eq!(v["draining"].as_bool(), Some(true));
    }

    #[test]
    fn request_ids_are_unique_and_ascending() {
        let stats = ServeStats::new();
        let a = stats.next_request_id();
        let b = stats.next_request_id();
        assert!(b > a);
    }

    #[test]
    fn slow_ring_keeps_the_top_k_by_latency() {
        let stats = ServeStats::new();
        for i in 0..40u64 {
            stats.offer_slow(SlowExemplar {
                id: i,
                ts_us: i,
                status: 200,
                batch: 1,
                stages_us: [1, 2, 3, 4, 5],
                total_us: i * 10,
                family: Some("Family0".into()),
            });
        }
        let v: Value = magic_json::from_str(&stats.render_slow()).unwrap();
        let rows = v["slow"].as_array().unwrap();
        assert_eq!(rows.len(), 16);
        // Slowest first, and only the slowest 16 of the 40 survive.
        assert_eq!(rows[0]["total_us"].as_u64(), Some(390));
        assert_eq!(rows[15]["total_us"].as_u64(), Some(240));
        assert_eq!(rows[0]["stages_us"]["execute"].as_u64(), Some(4));
    }

    #[test]
    fn parse_statsz_rejects_malformed_and_truncated_bodies() {
        assert!(parse_statsz("").is_err());
        assert!(parse_statsz("not json at all").is_err());
        assert!(parse_statsz("{\"requests\": 1").is_err()); // truncated
        assert!(parse_statsz("{\"requests\":}").is_err());
        // Valid JSON parses even if fields are missing — readers index
        // defensively.
        let v = parse_statsz("{}").unwrap();
        assert!(v["requests"].as_u64().is_none());
    }

    #[test]
    fn concurrent_recording_reconciles_with_render() {
        let (stats, _clock) = manual_stats();
        let stats = Arc::new(stats);
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for i in 0..2_500u64 {
                        stats.record_request();
                        stats.record_latency_us(t * 500 + i % 1_000 + 1);
                        stats.record_batch(((i % 7) + 1) as usize);
                        stats.record_stage_us(LifecycleStage::QueueWait, i % 100);
                    }
                })
            })
            .collect();
        // Hammer render concurrently with the writers: totals observed
        // mid-flight never overshoot, and the document always parses.
        for _ in 0..50 {
            let v = parse_statsz(&stats.render(0, 0, false)).unwrap();
            assert!(v["requests"].as_u64().unwrap() <= 10_000);
            assert!(v["latency_us"]["count"].as_u64().unwrap() <= 10_000);
        }
        for w in writers {
            w.join().unwrap();
        }
        let v = parse_statsz(&stats.render(0, 0, false)).unwrap();
        assert_eq!(v["requests"].as_u64(), Some(10_000));
        assert_eq!(v["latency_us"]["count"].as_u64(), Some(10_000));
        assert_eq!(v["batches"].as_u64(), Some(10_000));
        assert_eq!(v["stages_us"]["queue"]["count"].as_u64(), Some(10_000));
        // The windowed histogram agrees with the cumulative counter
        // because the manual clock never advanced: every observation is
        // still inside the window.
        assert_eq!(stats.latency_snapshot().count(), 10_000);
    }
}
