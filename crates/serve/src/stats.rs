//! Lock-free serving counters behind the `/statsz` endpoint.
//!
//! Every field is a relaxed atomic: IO threads and model workers bump
//! them on the hot path without coordination, and `/statsz` renders a
//! racy-but-consistent-enough snapshot. Latencies go into a log₂
//! histogram, so the reported `p50`/`p99` are upper bounds accurate to
//! within one power of two — plenty for "is the window tuned sanely"
//! decisions; the load generator in `magic-bench` computes exact
//! percentiles from raw samples for the benchmark record.

use magic_json::{json, Value};
use std::sync::atomic::{AtomicU64, Ordering};

const LATENCY_BUCKETS: usize = 40;

/// Shared serving counters; one instance per server, `Arc`-shared
/// across IO threads, model workers, and the `/statsz` handler.
pub struct ServeStats {
    /// Predict requests accepted into the queue.
    pub requests: AtomicU64,
    /// Predict responses answered 200.
    pub predictions: AtomicU64,
    /// Requests shed with 503 (queue full or draining).
    pub shed: AtomicU64,
    /// Requests expired with 504 (deadline passed before execution).
    pub timeouts: AtomicU64,
    /// Requests refused with a 4xx (bad body, bad route, oversized).
    pub client_errors: AtomicU64,
    /// Requests failed with 500 (e.g. worker reply channel lost).
    pub internal_errors: AtomicU64,
    /// Micro-batches executed.
    pub batches: AtomicU64,
    /// Requests summed over executed batches (`batched_requests /
    /// batches` is the effective batching factor).
    pub batched_requests: AtomicU64,
    /// Largest batch executed so far.
    pub max_batch: AtomicU64,
    /// Workspace-pool hits accumulated from worker tapes (per-batch
    /// deltas of `Tape::workspace_stats`).
    pub pool_hits: AtomicU64,
    /// Workspace-pool misses accumulated from worker tapes. Flat after
    /// warm-up for a steady workload — the zero-steady-state-alloc
    /// contract, asserted by the serve integration tests.
    pub pool_misses: AtomicU64,
    latency_count: AtomicU64,
    latency_sum_us: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for ServeStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeStats {
    /// Creates a zeroed stats block.
    pub fn new() -> Self {
        ServeStats {
            requests: AtomicU64::new(0),
            predictions: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            internal_errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            pool_hits: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
            latency_count: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one end-to-end request latency (enqueue → response).
    pub fn record_latency_us(&self, us: u64) {
        let idx = if us == 0 { 0 } else { 64 - us.leading_zeros() as usize };
        let idx = idx.min(LATENCY_BUCKETS - 1);
        self.latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Records an executed batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }

    /// Upper-bound estimate of the `q`-quantile latency in µs
    /// (`0.0 < q <= 1.0`), from the log₂ histogram. Returns 0 with no
    /// observations.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let count = self.latency_count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, bucket) in self.latency_buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket idx holds latencies in [2^(idx-1), 2^idx).
                return (1u64 << idx).saturating_sub(1).max(1);
            }
        }
        u64::MAX
    }

    /// Renders the `/statsz` JSON document. `queue_depth` and
    /// `draining` are sampled by the caller at render time.
    pub fn render(&self, queue_depth: usize, draining: bool) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let batches = load(&self.batches);
        let fused = load(&self.batched_requests);
        let mean_batch =
            if batches == 0 { 0.0 } else { fused as f64 / batches as f64 };
        let count = load(&self.latency_count);
        let mean_latency =
            if count == 0 { 0.0 } else { load(&self.latency_sum_us) as f64 / count as f64 };
        let body = json!({
            "requests": load(&self.requests),
            "predictions": load(&self.predictions),
            "shed": load(&self.shed),
            "timeouts": load(&self.timeouts),
            "client_errors": load(&self.client_errors),
            "internal_errors": load(&self.internal_errors),
            "queue_depth": queue_depth as u64,
            "draining": draining,
            "batches": load(&self.batches),
            "mean_batch_size": mean_batch,
            "max_batch_size": load(&self.max_batch),
            "pool_hits": load(&self.pool_hits),
            "pool_misses": load(&self.pool_misses),
            "latency_us": {
                "count": count,
                "mean": mean_latency,
                "p50": self.latency_quantile_us(0.50),
                "p99": self.latency_quantile_us(0.99),
            },
        });
        magic_json::to_string(&body)
    }
}

/// Parses a rendered `/statsz` body back into a JSON value — the
/// client-side half used by tests and the load generator.
pub fn parse_statsz(body: &str) -> Result<Value, String> {
    magic_json::from_str(body).map_err(|e| format!("bad statsz body: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_log2_upper_bounds() {
        let stats = ServeStats::new();
        for _ in 0..99 {
            stats.record_latency_us(100); // bucket [64, 128)
        }
        stats.record_latency_us(5_000); // bucket [4096, 8192)
        assert_eq!(stats.latency_quantile_us(0.50), 127);
        assert_eq!(stats.latency_quantile_us(0.99), 127);
        assert_eq!(stats.latency_quantile_us(1.0), 8_191);
    }

    #[test]
    fn empty_stats_render_zeroes() {
        let stats = ServeStats::new();
        let v = parse_statsz(&stats.render(0, false)).unwrap();
        assert_eq!(v["requests"].as_u64(), Some(0));
        assert_eq!(v["latency_us"]["p99"].as_u64(), Some(0));
        assert_eq!(v["draining"].as_bool(), Some(false));
    }

    #[test]
    fn batch_accounting_tracks_mean_and_max() {
        let stats = ServeStats::new();
        stats.record_batch(1);
        stats.record_batch(3);
        stats.record_batch(8);
        let v = parse_statsz(&stats.render(2, true)).unwrap();
        assert_eq!(v["batches"].as_u64(), Some(3));
        assert_eq!(v["mean_batch_size"].as_f64(), Some(4.0));
        assert_eq!(v["max_batch_size"].as_u64(), Some(8));
        assert_eq!(v["queue_depth"].as_u64(), Some(2));
        assert_eq!(v["draining"].as_bool(), Some(true));
    }
}
