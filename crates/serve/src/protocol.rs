//! The `magic serve` wire protocol: request decoding and response
//! encoding for the JSON-over-HTTP prediction API.
//!
//! A predict request body is either a raw IDA-style `.asm` listing
//! (plain text) or a JSON object holding one of:
//!
//! * `{"asm": "<listing text>"}` — the same listing, JSON-wrapped;
//! * `{"acfg": {...}}` — a pre-extracted attributed CFG, skipping the
//!   parse/CFG-build stages (the fast path for callers that run
//!   extraction themselves, e.g. from the binary ACFG cache).
//!
//! Alternatively, a request sent with `Content-Type:
//! application/x-magic-acfg` ([`ACFG_CONTENT_TYPE`]) carries one binary
//! `magic-acfg/1` record exactly as stored in a cache shard (see
//! [`magic_data::encode_record`]) — the compact zero-JSON fast path;
//! the record's label field is ignored.
//!
//! The ACFG object is `{"vertices": n, "edges": [[u, v], ...],
//! "attributes": [[f; 11], ...]}` with one 11-channel Table I attribute
//! row per vertex, in *raw count* scale (the server applies the same
//! `ln(1 + x)` scaling training used). A successful response is
//! `{"family", "probability", "scores", "batch_size", "queue_us",
//! "request_id"}`; errors are `{"error": "..."}`. Full schema and
//! status-code semantics are documented in `docs/SERVING.md`.

use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
use magic_json::{json, Value};
use magic_tensor::Tensor;

/// `Content-Type` selecting the binary `magic-acfg/1` record body.
pub const ACFG_CONTENT_TYPE: &str = "application/x-magic-acfg";

/// A decoded prediction input.
#[derive(Debug, Clone)]
pub enum RequestInput {
    /// A raw `.asm` listing still needing parse → CFG → ACFG extraction.
    Listing(String),
    /// A pre-extracted attributed CFG.
    Acfg(Acfg),
}

/// Decodes a predict request given its `Content-Type` header.
///
/// [`ACFG_CONTENT_TYPE`] bodies are decoded as one binary shard record
/// via [`magic_data::decode_record`] (the label field is ignored);
/// every other (or missing) content type falls through to
/// [`parse_predict_body`]. Media-type parameters (`; charset=...`) and
/// ASCII case are ignored when matching.
///
/// # Examples
///
/// ```
/// use magic_data::{encode_record, ShardRecord};
/// use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
/// use magic_serve::protocol::{parse_predict_request, RequestInput, ACFG_CONTENT_TYPE};
/// use magic_tensor::Tensor;
///
/// let mut g = DiGraph::new(2);
/// g.add_edge(0, 1);
/// let record = ShardRecord { label: 0, acfg: Acfg::new(g, Tensor::ones([2, NUM_ATTRIBUTES])) };
/// let body = encode_record(&record);
/// let input = parse_predict_request(Some(ACFG_CONTENT_TYPE), &body)?;
/// assert!(matches!(input, RequestInput::Acfg(_)));
///
/// let text = parse_predict_request(None, b".text:00401000    retn\n")?;
/// assert!(matches!(text, RequestInput::Listing(_)));
/// # Ok::<(), String>(())
/// ```
pub fn parse_predict_request(
    content_type: Option<&str>,
    body: &[u8],
) -> Result<RequestInput, String> {
    let media_type = content_type
        .map(|ct| ct.split(';').next().unwrap_or("").trim().to_ascii_lowercase());
    if media_type.as_deref() == Some(ACFG_CONTENT_TYPE) {
        let record = magic_data::decode_record(body)
            .map_err(|e| format!("bad {ACFG_CONTENT_TYPE} body: {e}"))?;
        return Ok(RequestInput::Acfg(record.acfg));
    }
    parse_predict_body(body)
}

/// Decodes a predict request body.
///
/// Bodies whose first non-whitespace byte is `{` are parsed as the JSON
/// envelope; anything else is treated as a raw listing. An empty body,
/// invalid UTF-8, malformed JSON, or a JSON object with neither `asm`
/// nor a valid `acfg` is an error (the server maps it to HTTP 400).
///
/// # Examples
///
/// ```
/// use magic_serve::protocol::{parse_predict_body, RequestInput};
///
/// let raw = parse_predict_body(b".text:00401000    retn\n")?;
/// assert!(matches!(raw, RequestInput::Listing(_)));
///
/// let wrapped = parse_predict_body(br#"{"asm": ".text:00401000    retn"}"#)?;
/// assert!(matches!(wrapped, RequestInput::Listing(_)));
///
/// assert!(parse_predict_body(b"").is_err());
/// assert!(parse_predict_body(b"{\"neither\": 1}").is_err());
/// # Ok::<(), String>(())
/// ```
pub fn parse_predict_body(body: &[u8]) -> Result<RequestInput, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let trimmed = text.trim_start();
    if trimmed.is_empty() {
        return Err("empty request body".into());
    }
    if !trimmed.starts_with('{') {
        return Ok(RequestInput::Listing(text.to_string()));
    }
    let value: Value = magic_json::from_str(trimmed).map_err(|e| format!("bad JSON body: {e}"))?;
    if let Some(listing) = value.get("asm") {
        let listing = listing.as_str().ok_or("\"asm\" must be a string")?;
        return Ok(RequestInput::Listing(listing.to_string()));
    }
    if let Some(acfg) = value.get("acfg") {
        return Ok(RequestInput::Acfg(acfg_from_json(acfg)?));
    }
    Err("JSON body must have an \"asm\" or \"acfg\" field".into())
}

/// Serializes an ACFG into the wire-format JSON object.
///
/// # Examples
///
/// Round-trips through [`acfg_from_json`]:
///
/// ```
/// use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
/// use magic_serve::protocol::{acfg_from_json, acfg_to_json};
/// use magic_tensor::Tensor;
///
/// let mut g = DiGraph::new(2);
/// g.add_edge(0, 1);
/// let acfg = Acfg::new(g, Tensor::ones([2, NUM_ATTRIBUTES]));
/// let back = acfg_from_json(&acfg_to_json(&acfg))?;
/// assert_eq!(back.vertex_count(), 2);
/// assert_eq!(back.edge_count(), 1);
/// assert_eq!(back.attributes(), acfg.attributes());
/// # Ok::<(), String>(())
/// ```
pub fn acfg_to_json(acfg: &Acfg) -> Value {
    let edges: Vec<Value> =
        acfg.graph().edges().map(|(u, v)| json!([u as u64, v as u64])).collect();
    let attributes: Vec<Value> = (0..acfg.vertex_count())
        .map(|i| Value::Array(acfg.attributes().row(i).iter().map(|&x| json!(x as f64)).collect()))
        .collect();
    json!({
        "vertices": acfg.vertex_count() as u64,
        "edges": edges,
        "attributes": attributes,
    })
}

/// Parses the wire-format ACFG object back into an [`Acfg`].
///
/// Validates vertex indices, the attribute row count, and the
/// 11-channel row width, so a malformed graph is rejected here instead
/// of panicking inside the model.
pub fn acfg_from_json(value: &Value) -> Result<Acfg, String> {
    let vertices = value
        .get("vertices")
        .and_then(Value::as_u64)
        .ok_or("acfg requires a numeric \"vertices\" field")? as usize;
    if vertices == 0 {
        return Err("acfg must have at least one vertex".into());
    }
    let mut graph = DiGraph::new(vertices);
    let edges = value
        .get("edges")
        .and_then(Value::as_array)
        .ok_or("acfg requires an \"edges\" array")?;
    for (i, edge) in edges.iter().enumerate() {
        let pair = edge.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
            format!("edge {i} must be a [from, to] pair")
        })?;
        let u = pair[0].as_u64().ok_or_else(|| format!("edge {i}: bad source"))? as usize;
        let v = pair[1].as_u64().ok_or_else(|| format!("edge {i}: bad target"))? as usize;
        if u >= vertices || v >= vertices {
            return Err(format!("edge {i} ({u} -> {v}) exceeds vertex count {vertices}"));
        }
        graph.add_edge(u, v);
    }
    let rows = value
        .get("attributes")
        .and_then(Value::as_array)
        .ok_or("acfg requires an \"attributes\" array")?;
    if rows.len() != vertices {
        return Err(format!("expected {vertices} attribute rows, got {}", rows.len()));
    }
    let mut attributes = Tensor::zeros([vertices, NUM_ATTRIBUTES]);
    for (i, row) in rows.iter().enumerate() {
        let row = row.as_array().filter(|r| r.len() == NUM_ATTRIBUTES).ok_or_else(|| {
            format!("attribute row {i} must hold {NUM_ATTRIBUTES} numbers")
        })?;
        for (j, cell) in row.iter().enumerate() {
            let x = cell.as_f64().ok_or_else(|| format!("attribute [{i}][{j}] is not a number"))?;
            attributes.set2(i, j, x as f32);
        }
    }
    Ok(Acfg::new(graph, attributes))
}

/// Encodes a successful prediction.
///
/// `scores` are the per-family probabilities in family order — they are
/// written with shortest-roundtrip float formatting, so a client parsing
/// them back recovers the model's `f32` outputs bit-for-bit.
/// `batch_size` reports how many requests were fused into the batch
/// that served this one; `queue_us` is the time the request spent
/// queued + batched + executed, server-side. `request_id` is the
/// server-assigned id echoed back so a client can correlate its
/// response with the access log and `GET /debug/slow`.
///
/// # Examples
///
/// ```
/// use magic_serve::protocol::encode_prediction;
///
/// let families = ["Ramnit".to_string(), "Vundo".to_string()];
/// let body = encode_prediction(&families, &[0.25f32, 0.75], 4, 1930, 7);
/// let v = magic_json::from_str(&body).unwrap();
/// assert_eq!(v["family"], "Vundo");
/// assert_eq!(v["scores"]["Ramnit"].as_f64(), Some(0.25));
/// assert_eq!(v["batch_size"].as_u64(), Some(4));
/// assert_eq!(v["request_id"].as_u64(), Some(7));
/// ```
pub fn encode_prediction(
    families: &[String],
    probs: &[f32],
    batch_size: usize,
    queue_us: u64,
    request_id: u64,
) -> String {
    assert_eq!(families.len(), probs.len(), "one probability per family");
    let (best, p) = probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("non-empty probability vector");
    let mut scores = magic_json::Map::new();
    for (name, &prob) in families.iter().zip(probs) {
        scores.insert(name.clone(), json!(prob as f64));
    }
    let body = json!({
        "family": families[best].clone(),
        "probability": *p as f64,
        "scores": Value::Object(scores),
        "batch_size": batch_size as u64,
        "queue_us": queue_us,
        "request_id": request_id,
    });
    magic_json::to_string(&body)
}

/// Encodes an error body: `{"error": "<message>"}`.
///
/// # Examples
///
/// ```
/// assert_eq!(
///     magic_serve::protocol::encode_error("queue full"),
///     r#"{"error":"queue full"}"#
/// );
/// ```
pub fn encode_error(message: &str) -> String {
    magic_json::to_string(&json!({ "error": message }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_acfg() -> Acfg {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(2, 0);
        let mut attrs = Tensor::zeros([3, NUM_ATTRIBUTES]);
        attrs.set2(0, 0, 4.0);
        attrs.set2(1, 8, 2.5);
        attrs.set2(2, 10, 1.0);
        Acfg::new(g, attrs)
    }

    #[test]
    fn acfg_json_roundtrip_is_exact() {
        let acfg = sample_acfg();
        let back = acfg_from_json(&acfg_to_json(&acfg)).unwrap();
        assert_eq!(back.vertex_count(), acfg.vertex_count());
        assert_eq!(back.edge_count(), acfg.edge_count());
        assert_eq!(back.attributes(), acfg.attributes());
        let edges: Vec<_> = acfg.graph().edges().collect();
        let back_edges: Vec<_> = back.graph().edges().collect();
        assert_eq!(edges, back_edges);
    }

    #[test]
    fn acfg_json_rejects_malformed_graphs() {
        let row = || vec![0.0f64; NUM_ATTRIBUTES];
        // Edge out of range.
        let v = json!({"vertices": 2, "edges": [[0, 5]], "attributes": [row(), row()]});
        assert!(acfg_from_json(&v).unwrap_err().contains("exceeds vertex count"));
        // Wrong attribute row count.
        let v = json!({"vertices": 2, "edges": [], "attributes": [row()]});
        assert!(acfg_from_json(&v).unwrap_err().contains("attribute rows"));
        // Wrong row width.
        let v = json!({"vertices": 1, "edges": [], "attributes": [[0.0, 1.0]]});
        assert!(acfg_from_json(&v).unwrap_err().contains("11 numbers"));
        // Zero vertices.
        let v = json!({"vertices": 0, "edges": [], "attributes": []});
        assert!(acfg_from_json(&v).unwrap_err().contains("at least one vertex"));
        // Missing fields.
        assert!(acfg_from_json(&json!({"vertices": 1})).is_err());
    }

    #[test]
    fn body_dispatch_covers_all_three_forms() {
        assert!(matches!(
            parse_predict_body(b".text:00401000  retn\n").unwrap(),
            RequestInput::Listing(_)
        ));
        assert!(matches!(
            parse_predict_body(br#"  {"asm": "mov eax, 1"}"#).unwrap(),
            RequestInput::Listing(_)
        ));
        let body = magic_json::to_string(&json!({ "acfg": acfg_to_json(&sample_acfg()) }));
        match parse_predict_body(body.as_bytes()).unwrap() {
            RequestInput::Acfg(acfg) => assert_eq!(acfg.vertex_count(), 3),
            other => panic!("expected Acfg, got {other:?}"),
        }
    }

    #[test]
    fn binary_content_type_decodes_a_shard_record() {
        let acfg = sample_acfg();
        let body = magic_data::encode_record(&magic_data::ShardRecord { label: 5, acfg: acfg.clone() });
        // Exact, parameterized, and mixed-case content types all match.
        for ct in [
            ACFG_CONTENT_TYPE.to_string(),
            format!("{ACFG_CONTENT_TYPE}; charset=binary"),
            ACFG_CONTENT_TYPE.to_ascii_uppercase(),
        ] {
            match parse_predict_request(Some(&ct), &body).unwrap() {
                RequestInput::Acfg(got) => {
                    assert_eq!(got.vertex_count(), acfg.vertex_count());
                    assert_eq!(got.attributes(), acfg.attributes());
                }
                other => panic!("expected Acfg, got {other:?}"),
            }
        }
        // Other content types fall through to the text parser.
        assert!(matches!(
            parse_predict_request(Some("text/plain"), b".text:00401000  retn\n").unwrap(),
            RequestInput::Listing(_)
        ));
        // Damaged binary bodies are typed errors, not panics.
        let err = parse_predict_request(Some(ACFG_CONTENT_TYPE), &body[..body.len() / 2])
            .unwrap_err();
        assert!(err.contains(ACFG_CONTENT_TYPE), "{err}");
        assert!(parse_predict_request(Some(ACFG_CONTENT_TYPE), b"").is_err());
    }

    #[test]
    fn body_errors_are_descriptive() {
        assert!(parse_predict_body(b"   ").unwrap_err().contains("empty"));
        assert!(parse_predict_body(b"{not json").unwrap_err().contains("bad JSON"));
        assert!(parse_predict_body(b"{\"x\": 1}").unwrap_err().contains("asm"));
        assert!(parse_predict_body(&[0xff, 0xfe, b'{']).unwrap_err().contains("UTF-8"));
        assert!(parse_predict_body(b"{\"asm\": 3}").unwrap_err().contains("string"));
    }

    #[test]
    fn prediction_scores_roundtrip_bitwise_through_json() {
        let families: Vec<String> = ["A", "B", "C"].iter().map(|s| s.to_string()).collect();
        let probs = [0.123_456_79_f32, 0.5, 0.376_543_2];
        let body = encode_prediction(&families, &probs, 3, 42, 9);
        let v = magic_json::from_str(&body).unwrap();
        assert_eq!(v["family"], "B");
        for (name, &p) in families.iter().zip(&probs) {
            let back = v["scores"][name.as_str()].as_f64().unwrap() as f32;
            assert_eq!(back.to_bits(), p.to_bits(), "{name} did not roundtrip");
        }
        assert_eq!(v["queue_us"].as_u64(), Some(42));
        assert_eq!(v["request_id"].as_u64(), Some(9));
    }
}
