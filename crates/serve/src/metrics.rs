//! Prometheus text exposition for `GET /metrics`.
//!
//! Renders the [`ServeStats`] block in the Prometheus text format
//! (version 0.0.4): `# HELP`/`# TYPE` headers followed by one sample
//! per line. The metric-name registry below is a pinned public
//! contract (golden-tested, documented in `docs/OBSERVABILITY.md`);
//! renaming or dropping a metric is a breaking change for scrape
//! configs and dashboards.
//!
//! Conventions:
//!
//! * `*_total` counters are cumulative since server start.
//! * `magic_serve_latency_us{quantile=...}` and
//!   `magic_serve_stage_us{stage=...,quantile=...}` are **windowed**
//!   interpolated quantiles over the last `--metrics-window` seconds —
//!   summary-style labels, but deliberately not lifetime summaries,
//!   because "p99 right now" is the operable signal. The latency
//!   `_count`/`_sum` pair stays cumulative (usable for `rate()`);
//!   stage `_count`/`_sum` are window-scoped.
//! * Rates (`*_rate_per_s`) are pre-divided sliding-window gauges for
//!   dashboards without PromQL.

use crate::stats::{LifecycleStage, ServeStats};
use std::fmt::Write as _;

/// `Content-Type` of the exposition body.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// The windowed quantiles exported for latency and stage series.
const QUANTILES: [(f64, &str); 3] = [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")];

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn sample_u64(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "{name} {value}");
}

fn sample_f64(out: &mut String, name: &str, value: f64) {
    let _ = writeln!(out, "{name} {value}");
}

/// Renders the full `/metrics` document. `queue_depth`,
/// `queue_high_water`, and `draining` are sampled by the caller at
/// scrape time (they live outside [`ServeStats`]).
pub fn render_metrics(
    stats: &ServeStats,
    queue_depth: usize,
    queue_high_water: u64,
    draining: bool,
) -> String {
    use std::sync::atomic::Ordering::Relaxed;
    let mut out = String::with_capacity(4096);

    header(&mut out, "magic_serve_uptime_seconds", "Seconds since server start.", "gauge");
    sample_u64(&mut out, "magic_serve_uptime_seconds", stats.uptime_s());

    let counters: [(&str, &str, u64); 10] = [
        (
            "magic_serve_requests_total",
            "Predict requests accepted into the queue.",
            stats.requests.load(Relaxed),
        ),
        (
            "magic_serve_predictions_total",
            "Predict requests answered 200.",
            stats.predictions.load(Relaxed),
        ),
        (
            "magic_serve_shed_total",
            "Requests shed with 503 (queue full or draining).",
            stats.shed.load(Relaxed),
        ),
        (
            "magic_serve_timeouts_total",
            "Requests expired with 504 before execution.",
            stats.timeouts.load(Relaxed),
        ),
        (
            "magic_serve_client_errors_total",
            "Requests refused with a 4xx status.",
            stats.client_errors.load(Relaxed),
        ),
        (
            "magic_serve_internal_errors_total",
            "Requests failed with 500.",
            stats.internal_errors.load(Relaxed),
        ),
        (
            "magic_serve_batches_total",
            "Fused micro-batches executed.",
            stats.batches.load(Relaxed),
        ),
        (
            "magic_serve_batched_requests_total",
            "Requests summed over executed batches.",
            stats.batched_requests.load(Relaxed),
        ),
        (
            "magic_serve_pool_hits_total",
            "Workspace-pool checkouts served from recycled buffers.",
            stats.pool_hits.load(Relaxed),
        ),
        (
            "magic_serve_pool_misses_total",
            "Workspace-pool checkouts that heap-allocated (flat after warm-up).",
            stats.pool_misses.load(Relaxed),
        ),
    ];
    for (name, help, value) in counters {
        header(&mut out, name, help, "counter");
        sample_u64(&mut out, name, value);
    }

    let gauges: [(&str, &str, u64); 4] = [
        (
            "magic_serve_max_batch_size",
            "Largest batch executed so far.",
            stats.max_batch.load(Relaxed),
        ),
        (
            "magic_serve_queue_depth",
            "Requests waiting in the batching queue right now.",
            queue_depth as u64,
        ),
        (
            "magic_serve_queue_high_water",
            "Deepest the batching queue has ever been.",
            queue_high_water,
        ),
        (
            "magic_serve_draining",
            "1 while the server drains for shutdown (stop routing to it).",
            draining as u64,
        ),
    ];
    for (name, help, value) in gauges {
        header(&mut out, name, help, "gauge");
        sample_u64(&mut out, name, value);
    }

    let (req_rate, shed_rate, batch_rate) = stats.window_rates();
    let rates: [(&str, &str, f64); 3] = [
        (
            "magic_serve_request_rate_per_s",
            "Accepted predict requests per second over the sliding window.",
            req_rate,
        ),
        (
            "magic_serve_shed_rate_per_s",
            "Shed requests per second over the sliding window.",
            shed_rate,
        ),
        (
            "magic_serve_batch_rate_per_s",
            "Executed batches per second over the sliding window.",
            batch_rate,
        ),
    ];
    for (name, help, value) in rates {
        header(&mut out, name, help, "gauge");
        sample_f64(&mut out, name, value);
    }

    header(
        &mut out,
        "magic_serve_latency_us",
        "End-to-end 200-predict latency in microseconds; quantiles are windowed \
         and interpolated, _count/_sum cumulative.",
        "summary",
    );
    let latency = stats.latency_snapshot();
    for (q, label) in QUANTILES {
        let _ = writeln!(
            out,
            "magic_serve_latency_us{{quantile=\"{label}\"}} {}",
            latency.quantile(q)
        );
    }
    let (count, sum) = stats.latency_totals();
    sample_u64(&mut out, "magic_serve_latency_us_sum", sum);
    sample_u64(&mut out, "magic_serve_latency_us_count", count);

    header(
        &mut out,
        "magic_serve_stage_us",
        "Per-lifecycle-stage latency in microseconds over the sliding window; \
         quantiles interpolated, _count/_sum window-scoped.",
        "summary",
    );
    for stage in LifecycleStage::ALL {
        let snap = stats.stage_snapshot(stage);
        let name = stage.name();
        for (q, label) in QUANTILES {
            let _ = writeln!(
                out,
                "magic_serve_stage_us{{stage=\"{name}\",quantile=\"{label}\"}} {}",
                snap.quantile(q)
            );
        }
        let _ = writeln!(out, "magic_serve_stage_us_sum{{stage=\"{name}\"}} {}", snap.sum());
        let _ = writeln!(out, "magic_serve_stage_us_count{{stage=\"{name}\"}} {}", snap.count());
    }

    out
}

/// Pulls one un-labelled numeric sample out of an exposition body —
/// the client-side helper tests and the load bench use to read a
/// scraped value back.
pub fn scrape_value(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .find(|l| !l.starts_with('#') && l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Pulls one labelled sample (`name{labels} value`) by exact label
/// string, e.g. `scrape_labeled(body, "magic_serve_latency_us",
/// "quantile=\"0.99\"")`.
pub fn scrape_labeled(body: &str, name: &str, labels: &str) -> Option<f64> {
    let prefix = format!("{name}{{{labels}}} ");
    body.lines()
        .find(|l| l.starts_with(&prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_obs::timeseries::{Clock, ManualClock};
    use std::sync::Arc;

    fn manual_stats() -> (ServeStats, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (ServeStats::with_window(60, Arc::clone(&clock) as Arc<dyn Clock>), clock)
    }

    #[test]
    fn every_pinned_metric_name_is_present() {
        let (stats, _clock) = manual_stats();
        let body = render_metrics(&stats, 0, 0, false);
        for name in [
            "magic_serve_uptime_seconds",
            "magic_serve_requests_total",
            "magic_serve_predictions_total",
            "magic_serve_shed_total",
            "magic_serve_timeouts_total",
            "magic_serve_client_errors_total",
            "magic_serve_internal_errors_total",
            "magic_serve_batches_total",
            "magic_serve_batched_requests_total",
            "magic_serve_pool_hits_total",
            "magic_serve_pool_misses_total",
            "magic_serve_max_batch_size",
            "magic_serve_queue_depth",
            "magic_serve_queue_high_water",
            "magic_serve_draining",
            "magic_serve_request_rate_per_s",
            "magic_serve_shed_rate_per_s",
            "magic_serve_batch_rate_per_s",
            "magic_serve_latency_us",
            "magic_serve_stage_us",
        ] {
            assert!(body.contains(&format!("# TYPE {name} ")), "missing {name}\n{body}");
        }
    }

    #[test]
    fn samples_reflect_recorded_activity() {
        let (stats, clock) = manual_stats();
        stats.record_request();
        stats.record_request();
        stats.record_shed();
        stats.record_latency_us(1_000);
        stats.record_latency_us(3_000);
        clock.advance_us(1_000_000);
        let body = render_metrics(&stats, 5, 9, true);
        assert_eq!(scrape_value(&body, "magic_serve_requests_total"), Some(2.0));
        assert_eq!(scrape_value(&body, "magic_serve_shed_total"), Some(1.0));
        assert_eq!(scrape_value(&body, "magic_serve_queue_depth"), Some(5.0));
        assert_eq!(scrape_value(&body, "magic_serve_queue_high_water"), Some(9.0));
        assert_eq!(scrape_value(&body, "magic_serve_draining"), Some(1.0));
        assert_eq!(scrape_value(&body, "magic_serve_latency_us_count"), Some(2.0));
        assert_eq!(scrape_value(&body, "magic_serve_latency_us_sum"), Some(4_000.0));
        let p99 = scrape_labeled(&body, "magic_serve_latency_us", "quantile=\"0.99\"").unwrap();
        assert!((2_816.0..3_072.0).contains(&p99), "p99 {p99} outside the 3000 bucket");
    }

    #[test]
    fn stage_series_carry_per_stage_labels() {
        let (stats, _clock) = manual_stats();
        stats.record_stage_us(LifecycleStage::Execute, 500);
        let body = render_metrics(&stats, 0, 0, false);
        assert_eq!(
            scrape_labeled(&body, "magic_serve_stage_us_count", "stage=\"execute\""),
            Some(1.0)
        );
        assert_eq!(
            scrape_labeled(&body, "magic_serve_stage_us_count", "stage=\"parse\""),
            Some(0.0)
        );
        let p50 = scrape_labeled(&body, "magic_serve_stage_us", "stage=\"execute\",quantile=\"0.5\"")
            .unwrap();
        assert!((480.0..512.0).contains(&p50), "p50 {p50} outside the 500 bucket");
    }
}
