//! `magic-serve` — the online half of the paper's deployment story
//! (Section VII): an HTTP inference daemon that classifies malware
//! CFGs with a trained DGCNN, fusing concurrent requests into
//! block-diagonal micro-batches.
//!
//! The crate is std-only, like the rest of the workspace: the HTTP/1.1
//! codec ([`http`]), the bounded batching queue ([`queue`]), the
//! `/statsz` counters and windowed telemetry ([`stats`]), the
//! Prometheus `/metrics` exposition ([`metrics`]), and the JSON wire
//! protocol ([`protocol`]) are all hand-rolled. [`server::start`] wires
//! them into a listener + IO pool + model-worker runtime; the
//! `magic serve` CLI subcommand is a thin flag-parsing shell around it.
//!
//! Batching relies on a proven invariant of the PR 6 batched forward:
//! fusing graphs into one [`magic_model::GraphBatch`] is bitwise
//! identical to running each graph alone, so the micro-batcher changes
//! throughput and latency but never a single probability bit. The wire
//! protocol preserves that exactness end to end — scores are printed
//! with shortest-roundtrip formatting, so what a client parses is
//! bit-for-bit what the model produced. Operational semantics (status
//! codes, load shedding, tuning) are documented in `docs/SERVING.md`.

#![warn(missing_docs)]

pub mod http;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;

pub use server::{start, ServeConfig, ServerHandle};
