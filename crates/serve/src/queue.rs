//! The bounded micro-batching queue between IO threads and model
//! workers.
//!
//! IO threads [`BoundedQueue::try_push`] accepted requests; the push is
//! non-blocking so a full queue turns into an immediate HTTP 503
//! load-shed instead of unbounded buffering. Model workers call
//! [`BoundedQueue::pop_batch`], which blocks until at least one job is
//! available and then keeps accumulating until either `max_batch` jobs
//! are in hand or the batching window has elapsed since the first job
//! was taken — the adaptive part: under load, batches fill to the cap
//! instantly; when idle, a lone request only ever waits out the window.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed the request
    /// (HTTP 503 + `Retry-After`).
    Full,
    /// The queue has been [closed](BoundedQueue::close) for shutdown;
    /// no new work is accepted while in-flight jobs drain.
    Closed,
}

struct QueueState<T> {
    jobs: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// A bounded multi-producer queue whose consumers pop *batches*.
///
/// All blocking lives on the consumer side; producers only ever take
/// the lock briefly. `T` is the job payload (the server uses one
/// pending request per entry).
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` jobs. A zero capacity
    /// is clamped to 1 (a queue that can never accept work would make
    /// every request shed).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false, high_water: 0 }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Attempts to enqueue a job without blocking. On success, returns
    /// the queue depth *including* the new job (the backlog it joined),
    /// for the `serve.queue_depth` histogram.
    pub fn try_push(&self, job: T) -> Result<usize, PushError> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.jobs.push_back(job);
        let depth = state.jobs.len();
        state.high_water = state.high_water.max(depth);
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until work is available, then drains up to `max_batch`
    /// jobs, waiting at most `window` after the first job for more to
    /// arrive. Returns `None` only when the queue is closed *and*
    /// empty — the signal for a worker to exit after the drain.
    pub fn pop_batch(&self, max_batch: usize, window: Duration) -> Option<Vec<T>> {
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock().unwrap();
        // Phase 1: wait (indefinitely) for the first job.
        loop {
            if !state.jobs.is_empty() {
                break;
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
        let mut batch = Vec::with_capacity(max_batch.min(state.jobs.len()));
        while batch.len() < max_batch {
            if let Some(job) = state.jobs.pop_front() {
                batch.push(job);
            } else {
                break;
            }
        }
        // Phase 2: if the cap is not met, linger up to `window` for
        // stragglers so light concurrent load still fuses into one
        // forward pass.
        if batch.len() < max_batch && !window.is_zero() && !state.closed {
            let deadline = Instant::now() + window;
            loop {
                while batch.len() < max_batch {
                    if let Some(job) = state.jobs.pop_front() {
                        batch.push(job);
                    } else {
                        break;
                    }
                }
                if batch.len() >= max_batch || state.closed {
                    break;
                }
                let now = Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (next, timeout) = self.available.wait_timeout(state, remaining).unwrap();
                state = next;
                if timeout.timed_out() {
                    // One last sweep below, then give up on the window.
                    while batch.len() < max_batch {
                        if let Some(job) = state.jobs.pop_front() {
                            batch.push(job);
                        } else {
                            break;
                        }
                    }
                    break;
                }
            }
        }
        drop(state);
        // Jobs may remain (e.g. cap hit with a backlog); wake a sibling
        // worker rather than leaving them parked until the next push.
        self.available.notify_one();
        Some(batch)
    }

    /// Closes the queue: subsequent pushes fail with
    /// [`PushError::Closed`], and workers exit once the backlog is
    /// drained. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Current number of queued jobs (diagnostic; racy by nature).
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }

    /// Deepest the queue has ever been — how close the server came to
    /// shedding. Monotone; surfaced as `queue_high_water` in `/statsz`
    /// and `/metrics`.
    pub fn high_water(&self) -> usize {
        self.state.lock().unwrap().high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_reports_depth_and_sheds_at_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn high_water_tracks_the_deepest_backlog_monotonically() {
        let q = BoundedQueue::new(8);
        assert_eq!(q.high_water(), 0);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.try_push(3).unwrap();
        assert_eq!(q.high_water(), 3);
        q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(q.depth(), 0);
        assert_eq!(q.high_water(), 3, "draining must not lower the mark");
        q.try_push(4).unwrap();
        assert_eq!(q.high_water(), 3, "a shallower backlog must not lower the mark");
    }

    #[test]
    fn pop_batch_respects_the_cap_and_leaves_the_rest() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop_batch(3, Duration::ZERO).unwrap(), vec![3, 4]);
    }

    #[test]
    fn window_accumulates_late_arrivals_into_one_batch() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.try_push(1).unwrap();
            })
        };
        let batch = q.pop_batch(2, Duration::from_millis(2_000)).unwrap();
        producer.join().unwrap();
        assert_eq!(batch, vec![0, 1]);
    }

    #[test]
    fn zero_window_takes_only_what_is_already_queued() {
        let q = BoundedQueue::new(8);
        q.try_push(7).unwrap();
        let start = Instant::now();
        let batch = q.pop_batch(4, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![7]);
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn close_rejects_pushes_drains_backlog_then_releases_workers() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed));
        // The backlog is still handed out...
        assert_eq!(q.pop_batch(8, Duration::from_secs(5)).unwrap(), vec![1]);
        // ...and once empty, workers get the exit signal instead of
        // blocking forever.
        assert!(q.pop_batch(8, Duration::from_secs(5)).is_none());
    }

    #[test]
    fn close_wakes_a_parked_worker() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(8));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(4, Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(worker.join().unwrap().is_none());
    }
}
