//! Property-based tests of the evaluation metrics, driven by a seeded
//! [`Rng64`] loop (the build is offline, so no proptest).

use magic_metrics::{mean_log_loss, ConfusionMatrix, ScoreReport};
use magic_tensor::Rng64;

const CASES: u64 = 128;

fn random_observations(rng: &mut Rng64, classes: usize, max_len: usize) -> Vec<(usize, usize)> {
    let len = rng.next_range(1, max_len);
    (0..len)
        .map(|_| (rng.next_below(classes), rng.next_below(classes)))
        .collect()
}

/// All derived scores stay in [0, 1] for arbitrary observations.
#[test]
fn scores_are_bounded() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let obs = random_observations(&mut rng, 4, 100);
        let mut cm = ConfusionMatrix::new(4);
        for (a, p) in &obs {
            cm.record(*a, *p);
        }
        assert!((0.0..=1.0).contains(&cm.accuracy()));
        for c in 0..4 {
            assert!((0.0..=1.0).contains(&cm.precision(c)));
            assert!((0.0..=1.0).contains(&cm.recall(c)));
            assert!((0.0..=1.0).contains(&cm.f1(c)));
            // F1 lies between min and max of precision/recall when both
            // are positive (harmonic mean property).
            let (p, r) = (cm.precision(c), cm.recall(c));
            if p > 0.0 && r > 0.0 {
                assert!(cm.f1(c) <= p.max(r) + 1e-12);
                assert!(cm.f1(c) >= p.min(r) - 1e-12);
            }
        }
        assert_eq!(cm.total(), obs.len());
    }
}

/// Perfect predictions maximize every score.
#[test]
fn perfect_predictions_score_one() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let len = rng.next_range(3, 50);
        let labels: Vec<usize> = (0..len).map(|_| rng.next_below(3)).collect();
        let mut cm = ConfusionMatrix::new(3);
        for &l in &labels {
            cm.record(l, l);
        }
        assert_eq!(cm.accuracy(), 1.0);
        for c in 0..3 {
            if cm.support(c) > 0 {
                assert_eq!(cm.f1(c), 1.0);
            }
        }
    }
}

/// Merging matrices is equivalent to recording the union of
/// observations.
#[test]
fn merge_equals_union() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let obs1 = random_observations(&mut rng, 3, 40);
        let obs2 = random_observations(&mut rng, 3, 40);
        let mut a = ConfusionMatrix::new(3);
        for (x, y) in &obs1 {
            a.record(*x, *y);
        }
        let mut b = ConfusionMatrix::new(3);
        for (x, y) in &obs2 {
            b.record(*x, *y);
        }
        a.merge(&b);
        let mut union = ConfusionMatrix::new(3);
        for (x, y) in obs1.iter().chain(&obs2) {
            union.record(*x, *y);
        }
        assert_eq!(a, union);
    }
}

/// Log loss is minimized by the one-hot distribution on the target and
/// never negative.
#[test]
fn log_loss_ordering() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let target = rng.next_below(3);
        let spread = rng.next_f64() * 0.3;
        let onehot = {
            let mut p = vec![0.0; 3];
            p[target] = 1.0;
            p
        };
        let mut softer = vec![spread / 2.0; 3];
        softer[target] = 1.0 - spread;
        let exact = mean_log_loss(&[onehot], &[target]);
        let soft = mean_log_loss(&[softer], &[target]);
        assert!(exact >= 0.0);
        assert!(soft >= exact);
    }
}

/// Report construction never loses classes and keeps supports consistent
/// with the matrix.
#[test]
fn report_supports_match() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let obs = random_observations(&mut rng, 5, 60);
        let mut cm = ConfusionMatrix::new(5);
        for (a, p) in &obs {
            cm.record(*a, *p);
        }
        let names: Vec<String> = (0..5).map(|i| format!("fam{i}")).collect();
        let report = ScoreReport::from_confusion(&cm, &names);
        assert_eq!(report.classes.len(), 5);
        let total_support: usize = report.classes.iter().map(|c| c.support).sum();
        assert_eq!(total_support, obs.len());
    }
}
