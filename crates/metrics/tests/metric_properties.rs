//! Property-based tests of the evaluation metrics.

use magic_metrics::{mean_log_loss, ConfusionMatrix, ScoreReport};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All derived scores stay in [0, 1] for arbitrary observations.
    #[test]
    fn scores_are_bounded(obs in prop::collection::vec((0usize..4, 0usize..4), 1..100)) {
        let mut cm = ConfusionMatrix::new(4);
        for (a, p) in &obs {
            cm.record(*a, *p);
        }
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        for c in 0..4 {
            prop_assert!((0.0..=1.0).contains(&cm.precision(c)));
            prop_assert!((0.0..=1.0).contains(&cm.recall(c)));
            prop_assert!((0.0..=1.0).contains(&cm.f1(c)));
            // F1 lies between min and max of precision/recall when both
            // are positive (harmonic mean property).
            let (p, r) = (cm.precision(c), cm.recall(c));
            if p > 0.0 && r > 0.0 {
                prop_assert!(cm.f1(c) <= p.max(r) + 1e-12);
                prop_assert!(cm.f1(c) >= p.min(r) - 1e-12);
            }
        }
        prop_assert_eq!(cm.total(), obs.len());
    }

    /// Perfect predictions maximize every score.
    #[test]
    fn perfect_predictions_score_one(labels in prop::collection::vec(0usize..3, 3..50)) {
        let mut cm = ConfusionMatrix::new(3);
        for &l in &labels {
            cm.record(l, l);
        }
        prop_assert_eq!(cm.accuracy(), 1.0);
        for c in 0..3 {
            if cm.support(c) > 0 {
                prop_assert_eq!(cm.f1(c), 1.0);
            }
        }
    }

    /// Merging matrices is equivalent to recording the union of
    /// observations.
    #[test]
    fn merge_equals_union(
        obs1 in prop::collection::vec((0usize..3, 0usize..3), 1..40),
        obs2 in prop::collection::vec((0usize..3, 0usize..3), 1..40),
    ) {
        let mut a = ConfusionMatrix::new(3);
        for (x, y) in &obs1 {
            a.record(*x, *y);
        }
        let mut b = ConfusionMatrix::new(3);
        for (x, y) in &obs2 {
            b.record(*x, *y);
        }
        a.merge(&b);
        let mut union = ConfusionMatrix::new(3);
        for (x, y) in obs1.iter().chain(&obs2) {
            union.record(*x, *y);
        }
        prop_assert_eq!(a, union);
    }

    /// Log loss is minimized by the one-hot distribution on the target
    /// and never negative.
    #[test]
    fn log_loss_ordering(target in 0usize..3, spread in 0.0f64..0.3) {
        let onehot = {
            let mut p = vec![0.0; 3];
            p[target] = 1.0;
            p
        };
        let mut softer = vec![spread / 2.0; 3];
        softer[target] = 1.0 - spread;
        let exact = mean_log_loss(&[onehot], &[target]);
        let soft = mean_log_loss(&[softer], &[target]);
        prop_assert!(exact >= 0.0);
        prop_assert!(soft >= exact);
    }

    /// Report construction never loses classes and keeps supports
    /// consistent with the matrix.
    #[test]
    fn report_supports_match(obs in prop::collection::vec((0usize..5, 0usize..5), 1..60)) {
        let mut cm = ConfusionMatrix::new(5);
        for (a, p) in &obs {
            cm.record(*a, *p);
        }
        let names: Vec<String> = (0..5).map(|i| format!("fam{i}")).collect();
        let report = ScoreReport::from_confusion(&cm, &names);
        prop_assert_eq!(report.classes.len(), 5);
        let total_support: usize = report.classes.iter().map(|c| c.support).sum();
        prop_assert_eq!(total_support, obs.len());
    }
}
