//! Score reports in the shape of the paper's Tables III and V, plus the
//! mean logarithmic loss of Table IV.

use crate::confusion::ConfusionMatrix;
use std::fmt;

/// Precision/recall/F1 of one class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassScore {
    /// Class (family) name.
    pub name: String,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
    /// Number of true samples of this class.
    pub support: usize,
}

/// A full evaluation report: per-class scores plus aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreReport {
    /// Per-class scores, in class order.
    pub classes: Vec<ClassScore>,
    /// Overall accuracy.
    pub accuracy: f64,
    /// Unweighted mean F1.
    pub macro_f1: f64,
    /// Mean negative-log-likelihood, when probabilities were recorded.
    pub log_loss: Option<f64>,
}

impl ScoreReport {
    /// Builds a report from a confusion matrix and class names.
    ///
    /// # Panics
    ///
    /// Panics if `names.len()` differs from the matrix size.
    pub fn from_confusion(cm: &ConfusionMatrix, names: &[String]) -> Self {
        assert_eq!(names.len(), cm.num_classes(), "one name per class");
        let classes = names
            .iter()
            .enumerate()
            .map(|(c, name)| ClassScore {
                name: name.clone(),
                precision: cm.precision(c),
                recall: cm.recall(c),
                f1: cm.f1(c),
                support: cm.support(c),
            })
            .collect();
        ScoreReport {
            classes,
            accuracy: cm.accuracy(),
            macro_f1: cm.macro_f1(),
            log_loss: None,
        }
    }

    /// Attaches a mean log loss (builder style).
    pub fn with_log_loss(mut self, loss: f64) -> Self {
        self.log_loss = Some(loss);
        self
    }

    /// Score of a class by name.
    pub fn class(&self, name: &str) -> Option<&ClassScore> {
        self.classes.iter().find(|c| c.name == name)
    }
}

impl fmt::Display for ScoreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<18} {:>9} {:>9} {:>9} {:>8}", "Family", "Precision", "Recall", "F1", "Support")?;
        for c in &self.classes {
            writeln!(
                f,
                "{:<18} {:>9.6} {:>9.6} {:>9.6} {:>8}",
                c.name, c.precision, c.recall, c.f1, c.support
            )?;
        }
        write!(f, "accuracy {:.4}  macro-F1 {:.4}", self.accuracy, self.macro_f1)?;
        if let Some(l) = self.log_loss {
            write!(f, "  log-loss {l:.4}")?;
        }
        Ok(())
    }
}

/// Mean negative-log-likelihood (Eq. 5 evaluated on held-out data):
/// `-(1/N) Σ log p_i[y_i]`, with probabilities clamped to `[1e-15, 1]`
/// as is conventional for the Kaggle metric the paper reports.
///
/// # Panics
///
/// Panics if lengths mismatch or a target is out of range.
pub fn mean_log_loss(probabilities: &[Vec<f64>], targets: &[usize]) -> f64 {
    assert_eq!(probabilities.len(), targets.len(), "one target per row");
    assert!(!targets.is_empty(), "log loss of empty set");
    let mut total = 0.0;
    for (p, &t) in probabilities.iter().zip(targets) {
        assert!(t < p.len(), "target {t} out of range");
        total -= p[t].clamp(1e-15, 1.0).ln();
    }
    total / targets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_matches_confusion_matrix() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(1, 0);
        cm.record(1, 1);
        let names = vec!["Zbot".to_string(), "Zlob".to_string()];
        let report = ScoreReport::from_confusion(&cm, &names);
        assert_eq!(report.classes.len(), 2);
        assert_eq!(report.class("Zbot").unwrap().support, 2);
        assert!((report.accuracy - 0.75).abs() < 1e-12);
        assert!(report.log_loss.is_none());
        let with = report.with_log_loss(0.3);
        assert_eq!(with.log_loss, Some(0.3));
    }

    #[test]
    fn display_lists_every_family() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(1, 1);
        let names = vec!["A".to_string(), "B".to_string()];
        let text = ScoreReport::from_confusion(&cm, &names).to_string();
        assert!(text.contains('A') && text.contains('B'));
        assert!(text.contains("accuracy"));
    }

    #[test]
    fn log_loss_of_perfect_predictions_is_zero() {
        let probs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!(mean_log_loss(&probs, &[0, 1]) < 1e-12);
    }

    #[test]
    fn log_loss_of_uniform_predictions_is_ln_k() {
        let probs = vec![vec![0.25; 4]; 10];
        let targets = vec![0; 10];
        assert!((mean_log_loss(&probs, &targets) - 4.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn log_loss_clamps_zero_probability() {
        let probs = vec![vec![0.0, 1.0]];
        let loss = mean_log_loss(&probs, &[0]);
        assert!(loss.is_finite());
        assert!(loss > 30.0); // -ln(1e-15) ≈ 34.5
    }
}
