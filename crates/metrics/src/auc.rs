//! Binary detection metrics: ROC-AUC.
//!
//! The works the paper compares against in the *detection* setting
//! ([39], [12]) report two-class AUC; the `ext_detection` experiment uses
//! this implementation to evaluate MAGIC as a detector (benign vs any
//! malware family).

/// Area under the ROC curve for binary scores.
///
/// `scores[i]` is the model's malware score for sample `i`;
/// `is_positive[i]` marks the true malware samples. Ties are handled by
/// the rank-sum (Mann–Whitney) formulation.
///
/// Returns 0.5 when either class is empty (no ranking information).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn roc_auc(scores: &[f64], is_positive: &[bool]) -> f64 {
    assert_eq!(scores.len(), is_positive.len(), "one label per score");
    let positives = is_positive.iter().filter(|&&p| p).count();
    let negatives = scores.len() - positives;
    if positives == 0 || negatives == 0 {
        return 0.5;
    }
    // Rank scores ascending, sharing average ranks across ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let positive_rank_sum: f64 = ranks
        .iter()
        .zip(is_positive)
        .filter(|(_, &p)| p)
        .map(|(r, _)| r)
        .sum();
    let u = positive_rank_sum - positives as f64 * (positives as f64 + 1.0) / 2.0;
    u / (positives as f64 * negatives as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_separation_is_zero() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [false, false, true, true];
        assert!(roc_auc(&scores, &labels) < 1e-12);
    }

    #[test]
    fn balanced_interleaving_is_half() {
        // Positives at the extremes, negatives in the middle: one
        // positive outranks both negatives, the other outranks neither.
        let scores = [0.1, 0.2, 0.3, 0.4];
        let labels = [true, false, false, true];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_ordering_gives_fractional_auc() {
        // Positive ranks 1 and 3 of 4: U = (1+3) - 3 = 1; AUC = 1/4.
        let scores = [0.1, 0.2, 0.3, 0.4];
        let labels = [true, false, true, false];
        assert!((roc_auc(&scores, &labels) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_ties_give_half() {
        let scores = [0.5; 6];
        let labels = [true, false, true, false, true, false];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_class_is_half() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[0.1, 0.9], &[false, false]), 0.5);
    }

    #[test]
    fn auc_is_threshold_free() {
        // Monotone transformation of scores must not change AUC.
        let scores = [0.1, 0.5, 0.3, 0.9, 0.2];
        let labels = [false, true, false, true, false];
        let transformed: Vec<f64> = scores.iter().map(|s| s * 100.0 + 7.0).collect();
        assert!((roc_auc(&scores, &labels) - roc_auc(&transformed, &labels)).abs() < 1e-12);
    }
}
