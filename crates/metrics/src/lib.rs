#![warn(missing_docs)]

//! Classification metrics for the MAGIC reproduction: confusion matrices,
//! per-family precision/recall/F1 (Tables III and V), accuracy and the
//! mean negative-log-likelihood loss (Table IV).
//!
//! # Example
//!
//! ```
//! use magic_metrics::ConfusionMatrix;
//!
//! let mut cm = ConfusionMatrix::new(2);
//! cm.record(0, 0);
//! cm.record(1, 1);
//! cm.record(1, 0); // a mistake
//! assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-9);
//! assert!((cm.recall(1) - 0.5).abs() < 1e-9);
//! ```

mod auc;
mod confusion;
mod report;

pub use auc::roc_auc;
pub use confusion::ConfusionMatrix;
pub use report::{mean_log_loss, ClassScore, ScoreReport};
