//! Confusion matrix and the derived per-class scores.

use std::fmt;

/// A square confusion matrix; rows are true classes, columns predicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Creates an empty `n`-class matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes > 0, "need at least one class");
        ConfusionMatrix { counts: vec![vec![0; num_classes]; num_classes] }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either class index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        let n = self.num_classes();
        assert!(actual < n && predicted < n, "class index out of range");
        self.counts[actual][predicted] += 1;
    }

    /// Merges another matrix (e.g. across CV folds).
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.num_classes(), other.num_classes(), "size mismatch");
        for (row, orow) in self.counts.iter_mut().zip(&other.counts) {
            for (c, oc) in row.iter_mut().zip(orow) {
                *c += *oc;
            }
        }
    }

    /// Raw count of `(actual, predicted)`.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual][predicted]
    }

    /// Total observations recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Observations whose true class is `c`.
    pub fn support(&self, c: usize) -> usize {
        self.counts[c].iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.num_classes()).map(|c| self.counts[c][c]).sum();
        correct as f64 / total as f64
    }

    /// Precision of class `c`: `TP / (TP + FP)`; 0 when the class was
    /// never predicted.
    pub fn precision(&self, c: usize) -> f64 {
        let tp = self.counts[c][c];
        let predicted: usize = (0..self.num_classes()).map(|r| self.counts[r][c]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of class `c`: `TP / (TP + FN)`; 0 when the class has no
    /// support.
    pub fn recall(&self, c: usize) -> f64 {
        let tp = self.counts[c][c];
        let actual = self.support(c);
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 score of class `c` (harmonic mean of precision and recall).
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean F1 over all classes.
    pub fn macro_f1(&self) -> f64 {
        let n = self.num_classes();
        (0..n).map(|c| self.f1(c)).sum::<f64>() / n as f64
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "confusion matrix ({} classes):", self.num_classes())?;
        for row in &self.counts {
            for c in row {
                write!(f, "{c:>7}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(3);
        // Class 0: 8 correct, 2 predicted as 1.
        for _ in 0..8 {
            cm.record(0, 0);
        }
        cm.record(0, 1);
        cm.record(0, 1);
        // Class 1: 5 correct.
        for _ in 0..5 {
            cm.record(1, 1);
        }
        // Class 2: 3 correct, 1 predicted as 0.
        for _ in 0..3 {
            cm.record(2, 2);
        }
        cm.record(2, 0);
        cm
    }

    #[test]
    fn accuracy_counts_diagonal() {
        let cm = sample();
        // 16 correct of 19 recorded observations.
        assert!((cm.accuracy() - 16.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1_per_class() {
        let cm = sample();
        // Class 0: tp=8, predicted 0 nine times (8 + 1 from class 2).
        assert!((cm.precision(0) - 8.0 / 9.0).abs() < 1e-12);
        assert!((cm.recall(0) - 0.8).abs() < 1e-12);
        // Class 1: tp=5, predicted 7 times.
        assert!((cm.precision(1) - 5.0 / 7.0).abs() < 1e-12);
        assert!((cm.recall(1) - 1.0).abs() < 1e-12);
        let p = cm.precision(1);
        let r = cm.recall(1);
        assert!((cm.f1(1) - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn unpredicted_class_has_zero_scores() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        assert_eq!(cm.precision(1), 0.0);
        assert_eq!(cm.recall(1), 0.0);
        assert_eq!(cm.f1(1), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total(), 38);
        assert_eq!(a.count(0, 0), 16);
    }

    #[test]
    fn empty_matrix_accuracy_is_zero() {
        assert_eq!(ConfusionMatrix::new(4).accuracy(), 0.0);
    }

    #[test]
    fn display_renders_all_rows() {
        let s = sample().to_string();
        assert_eq!(s.lines().count(), 4);
    }
}
